// Wire vocabulary of the discovery-as-a-service job protocol.
//
// A DiscoveryClient and a DiscoveryServer exchange the serve frame types
// (wire.h, FrameType 9-13) over an ordinary ShardChannel, so the job
// protocol inherits the shard seam's entire robustness stack for free:
// magic/version/checksum validation, bounded frame sizes, bounds-checked
// payload reads, kBatch coalescing. This module owns only the payload
// layouts; nothing here does I/O.
//
// Conversation shape (one TCP connection, any number of jobs):
//
//   client                              server
//   ------                              ------
//   kJobSubmit(request_id, opts, table)
//                                       kJobStatus(job_id, queued)   (ack)
//                                    or kJobError(code, msg)         (reject)
//                                       kJobStatus(job_id, running, level...)*
//                                       kJobResultBatch(job_id, chunk)*
//                                       kJobResultBatch(job_id, final chunk)
//   kJobStatus(job_id)  (bare query)
//                                       kJobStatus(job_id, snapshot)
//   kCancel(job_id)
//                                       ... the job's final result arrives
//                                       with cancelled set (a cancelled job
//                                       still answers — with the valid
//                                       prefix it had).
//
// Every terminal outcome of an *admitted* job is a result blob (even
// cancelled/timed-out runs: DiscoveryResult carries those flags), so
// kJobError is reserved for jobs that never ran: admission rejections
// (kOverloaded, kShuttingDown) and malformed submissions.
#ifndef AOD_SERVE_SERVE_WIRE_H_
#define AOD_SERVE_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "od/dependency_kind.h"
#include "od/discovery.h"
#include "shard/wire.h"

namespace aod {
namespace serve {

/// Job lifecycle states as they appear in kJobStatus frames.
enum class JobState : uint8_t {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,
  kCancelled = 3,
  kFailed = 4,
};

const char* JobStateToString(JobState state);

/// The client-settable DiscoveryOptions subset. Everything execution-
/// environmental (thread pool, shard topology, transports, test seams)
/// is the server's business: a job describes *what* to discover, the
/// server decides *how*. Converted to/from DiscoveryOptions by the
/// helpers below.
struct WireJobOptions {
  double epsilon = 0.10;
  /// ValidatorKind underlying value; decoders reject > 2.
  uint8_t validator = 2;
  /// DependencyKindSet bits; decoders reject empty or out-of-range sets.
  uint32_t kinds = DependencyKindSet::OdDefault().bits();
  /// Maximum g1 error for AFD candidates; decoders reject values
  /// outside [0, 1].
  double afd_error = 0.05;
  /// Keep only the k highest-ranked dependencies (0 = all); decoders
  /// reject negative values.
  int64_t top_k = 0;
  int32_t max_level = 0;
  int32_t max_lhs_arity = 0;
  bool bidirectional = false;
  bool collect_removal_sets = false;
  bool enable_sampling_filter = false;
  int64_t sampler_sample_size = 2000;
  double sampler_reject_margin = 0.5;
  uint64_t sampler_seed = 7;
  bool enable_derivation_planner = true;
  int64_t partition_memory_budget_bytes = 0;
  /// Per-job wall-clock deadline in seconds (0 = none). The server
  /// additionally caps it at its own max_job_seconds and enforces it
  /// through the driver's cooperative budget seams.
  double deadline_seconds = 0.0;
};

WireJobOptions WireJobOptionsFrom(const DiscoveryOptions& options);
/// Applies the subset onto a default-constructed DiscoveryOptions; the
/// caller then fills in the environmental fields (pool, cancel, ...).
DiscoveryOptions ToDiscoveryOptions(const WireJobOptions& wire);

/// One job submission. The table travels as a complete sealed
/// kTableBlock frame (shard::EncodeTableBlock) nested in the payload —
/// reusing the shard codec means the ranks arrive validated against
/// their declared cardinalities, exactly as on the shard seam.
struct WireJobSubmit {
  /// Client-chosen token echoed in the ack/rejection, so a client with
  /// several submissions in flight can match answers to questions.
  uint64_t request_id = 0;
  WireJobOptions options;
  std::vector<uint8_t> table_frame;
};

std::vector<uint8_t> EncodeJobSubmit(const WireJobSubmit& submit);
Result<WireJobSubmit> DecodeJobSubmit(const shard::DecodedFrame& frame);

/// Server -> client lifecycle/progress snapshot; client -> server as a
/// bare query (only job_id meaningful).
struct WireJobStatus {
  uint64_t job_id = 0;
  /// Echo of the submission's request_id (0 on bare queries/progress).
  uint64_t request_id = 0;
  JobState state = JobState::kQueued;
  /// Jobs ahead of this one when queued; -1 otherwise.
  int32_t queue_position = -1;
  /// Last completed lattice level while running.
  int32_t level = 0;
  /// Dependency totals so far, all four kinds — a mixed-kind job's
  /// progress is mostly FD/AFD counts, so dropping them made status
  /// frames claim an idle job. Decode rejects negative counts.
  int64_t total_ocs = 0;
  int64_t total_ofds = 0;
  int64_t total_fds = 0;
  int64_t total_afds = 0;
};

std::vector<uint8_t> EncodeJobStatus(const WireJobStatus& status);
Result<WireJobStatus> DecodeJobStatus(const shard::DecodedFrame& frame);

/// A typed rejection/failure for a job that never produced a result.
struct WireJobError {
  /// 0 when the submission itself was rejected (no job was created).
  uint64_t job_id = 0;
  uint64_t request_id = 0;
  Status status;
};

std::vector<uint8_t> EncodeJobError(const WireJobError& error);
Result<WireJobError> DecodeJobError(const shard::DecodedFrame& frame);

/// One slice of a finished job's serialized result blob
/// (od/result_io.h, SerializeResult). The client concatenates slices in
/// arrival order and deserializes once the final chunk lands — the same
/// chunking discipline as the shard seam's kResultBatch, so a large
/// result streams under the frame-size bound instead of materializing
/// one giant frame.
struct WireJobResultChunk {
  uint64_t job_id = 0;
  bool final_chunk = true;
  std::vector<uint8_t> blob_bytes;
};

std::vector<uint8_t> EncodeJobResultChunk(const WireJobResultChunk& chunk);
Result<WireJobResultChunk> DecodeJobResultChunk(
    const shard::DecodedFrame& frame);

/// kCancel payload: the job to abandon.
std::vector<uint8_t> EncodeCancel(uint64_t job_id);
Result<uint64_t> DecodeCancel(const shard::DecodedFrame& frame);

}  // namespace serve
}  // namespace aod

#endif  // AOD_SERVE_SERVE_WIRE_H_
