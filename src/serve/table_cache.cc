#include "serve/table_cache.h"

#include <algorithm>
#include <utility>


namespace aod {
namespace serve {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x00000100000001b3ULL;

void FoldBytes(uint64_t* h, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void FoldU64(uint64_t* h, uint64_t v) { FoldBytes(h, &v, sizeof(v)); }

}  // namespace

uint64_t TableFingerprint(const EncodedTable& table) {
  uint64_t h = kFnvOffset;
  FoldU64(&h, static_cast<uint64_t>(table.num_rows()));
  FoldU64(&h, static_cast<uint64_t>(table.num_columns()));
  for (int i = 0; i < table.num_columns(); ++i) {
    const EncodedColumn& col = table.column(i);
    FoldU64(&h, col.name.size());
    FoldBytes(&h, col.name.data(), col.name.size());
    FoldU64(&h, static_cast<uint64_t>(col.cardinality));
    FoldBytes(&h, col.ranks.data(), col.ranks.size() * sizeof(int32_t));
  }
  return h;
}

bool TableCache::SameContent(const EncodedTable& a, const EncodedTable& b) {
  if (a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (int i = 0; i < a.num_columns(); ++i) {
    const EncodedColumn& ca = a.column(i);
    const EncodedColumn& cb = b.column(i);
    if (ca.name != cb.name || ca.cardinality != cb.cardinality ||
        ca.ranks != cb.ranks) {
      return false;
    }
  }
  return true;
}

std::shared_ptr<const TableCache::Entry> TableCache::Intern(
    EncodedTable table) {
  const uint64_t fp = TableFingerprint(table);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(fp);
    if (it != entries_.end()) {
      for (const auto& entry : it->second) {
        if (SameContent(*entry->table, table)) {
          ++hits_;
          // Refresh LRU position.
          for (auto lit = lru_.begin(); lit != lru_.end(); ++lit) {
            if (lit->second == entry.get()) {
              lru_.splice(lru_.begin(), lru_, lit);
              break;
            }
          }
          return entry;
        }
      }
    }
  }
  // Build outside the lock — sorting every column is the expensive part,
  // and concurrent submissions of *different* tables must not serialize
  // on it. Two racing submissions of the same new table both build; the
  // second Intern below finds the first's entry and drops its own work.
  auto entry = std::make_shared<Entry>();
  entry->table =
      std::make_shared<const EncodedTable>(std::move(table));
  entry->bases.reserve(entry->table->num_columns());
  for (int a = 0; a < entry->table->num_columns(); ++a) {
    entry->bases.push_back(std::make_shared<const StrippedPartition>(
        StrippedPartition::FromColumn(entry->table->column(a))));
  }
  if (race_window_hook_ && !in_race_window_hook_) {
    in_race_window_hook_ = true;
    race_window_hook_();
    in_race_window_hook_ = false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto& bucket = entries_[fp];
  for (const auto& existing : bucket) {
    if (SameContent(*existing->table, *entry->table)) {
      ++hits_;
      // A hit is a hit regardless of which path found it: without the
      // refresh, a table that is only ever re-interned through this
      // race-loss path looks idle to the LRU and gets evicted while hot.
      for (auto lit = lru_.begin(); lit != lru_.end(); ++lit) {
        if (lit->second == existing.get()) {
          lru_.splice(lru_.begin(), lru_, lit);
          break;
        }
      }
      return existing;
    }
  }
  ++misses_;
  bucket.push_back(entry);
  lru_.emplace_front(fp, entry.get());
  while (lru_.size() > capacity_) {
    auto [old_fp, old_ptr] = lru_.back();
    lru_.pop_back();
    auto bit = entries_.find(old_fp);
    if (bit != entries_.end()) {
      auto& vec = bit->second;
      vec.erase(std::remove_if(vec.begin(), vec.end(),
                               [old_ptr](const auto& e) {
                                 return e.get() == old_ptr;
                               }),
                vec.end());
      if (vec.empty()) entries_.erase(bit);
    }
  }
  return entry;
}

void TableCache::set_race_window_hook_for_test(std::function<void()> hook) {
  race_window_hook_ = std::move(hook);
}

size_t TableCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

int64_t TableCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

int64_t TableCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace serve
}  // namespace aod
