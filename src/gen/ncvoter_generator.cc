#include "gen/ncvoter_generator.h"

#include <cmath>
#include <numeric>

#include "common/macros.h"
#include "gen/random.h"

namespace aod {
namespace {

constexpr int kCounties = 100;
constexpr int kMunisPerCounty = 2;
constexpr int kMunis = kCounties * kMunisPerCounty;

std::string PaddedId(const char* prefix, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%03lld", prefix,
                static_cast<long long>(v));
  return buf;
}

/// A bijection over [0, n) that is the identity except for `swap_pairs`
/// randomly chosen transpositions — the "out-of-order abbreviation" model.
std::vector<int64_t> MostlyIdentity(int64_t n, int64_t swap_pairs, Rng* rng) {
  std::vector<int64_t> mapping(static_cast<size_t>(n));
  std::iota(mapping.begin(), mapping.end(), 0);
  for (int64_t s = 0; s < swap_pairs; ++s) {
    size_t i = static_cast<size_t>(rng->UniformInt(0, n - 1));
    size_t j = static_cast<size_t>(rng->UniformInt(0, n - 1));
    std::swap(mapping[i], mapping[j]);
  }
  return mapping;
}

}  // namespace

Table GenerateNcVoterTable(int64_t num_rows, int num_attributes,
                           uint64_t seed) {
  AOD_CHECK_MSG(
      num_attributes >= 1 && num_attributes <= kNcVoterMaxAttributes,
      "ncvoter schema has 1..%d attributes", kNcVoterMaxAttributes);

  const std::vector<Field> kFields = {
      {"regNum", DataType::kInt64},
      {"county", DataType::kInt64},
      {"age", DataType::kInt64},
      {"birthYear", DataType::kInt64},
      {"zip", DataType::kInt64},
      {"municipalityDesc", DataType::kString},
      {"municipalityAbbrv", DataType::kString},
      {"registrationDate", DataType::kInt64},
      {"precinct", DataType::kInt64},
      {"party", DataType::kInt64},
      {"streetAddressId", DataType::kInt64},
      {"mailAddressId", DataType::kInt64},
      {"status", DataType::kInt64},
      {"gender", DataType::kInt64},
      {"race", DataType::kInt64},
      {"phoneArea", DataType::kInt64},
      {"voterScore", DataType::kInt64},
      {"lastVotedYear", DataType::kInt64},
      {"districtCode", DataType::kInt64},
      {"committeeId", DataType::kInt64},
      {"wardId", DataType::kInt64},
      {"schoolDistrict", DataType::kInt64},
      {"fireDistrict", DataType::kInt64},
      {"medianIncome", DataType::kInt64},
      {"householdSize", DataType::kInt64},
      {"yearsRegistered", DataType::kInt64},
      {"absenteeCount", DataType::kInt64},
      {"pollingStationId", DataType::kInt64},
      {"registrationSource", DataType::kInt64},
      {"voterSerial", DataType::kInt64},
  };
  AOD_CHECK(static_cast<int>(kFields.size()) == kNcVoterMaxAttributes);

  Schema schema;
  for (int i = 0; i < num_attributes; ++i) schema.AddField(kFields[static_cast<size_t>(i)]);
  Table table(std::move(schema));

  Rng rng(seed);
  // Fixed per-domain structures (independent of row count so that row
  // prefixes of a bigger table look like smaller tables of the same
  // world — mirroring the paper's prefix-sampling methodology).
  // ~18% of municipalities get an out-of-order abbreviation.
  std::vector<int64_t> abbrev_map =
      MostlyIdentity(kMunis, /*swap_pairs=*/kMunis * 9 / 100, &rng);
  std::vector<int64_t> phone_perm(kCounties);
  std::iota(phone_perm.begin(), phone_perm.end(), 0);
  rng.Shuffle(&phone_perm);
  std::vector<int64_t> school_perm(static_cast<size_t>(kCounties) * 5);
  std::iota(school_perm.begin(), school_perm.end(), 0);
  rng.Shuffle(&school_perm);
  std::vector<int64_t> fire_perm(static_cast<size_t>(kCounties) * 20);
  std::iota(fire_perm.begin(), fire_perm.end(), 0);
  rng.Shuffle(&fire_perm);

  std::vector<Value> row(static_cast<size_t>(num_attributes));
  auto set = [&row, num_attributes](int col, Value v) {
    if (col < num_attributes) row[static_cast<size_t>(col)] = std::move(v);
  };

  for (int64_t r = 0; r < num_rows; ++r) {
    int64_t county = rng.Zipf(kCounties, 0.7);
    int64_t age = rng.UniformInt(18, 100);
    int64_t zip = county * 10 + rng.UniformInt(0, 9);
    int64_t muni = county * kMunisPerCounty +
                   rng.UniformInt(0, kMunisPerCounty - 1);
    int64_t precinct = county * 20 + rng.UniformInt(0, 19);
    int64_t party = rng.Zipf(5, 0.8);
    int64_t street = rng.UniformInt(0, 4999);

    set(0, Value(r));
    set(1, Value(county));
    set(2, Value(age));
    // Exact inverse order of age: exact FDs both ways, all-swap OC.
    set(3, Value(int64_t{2026} - age));
    set(4, Value(zip));  // zip -> county is an exact OD (zip = county*10+d)
    set(5, Value(PaddedId("city_", muni)));
    set(6, Value(PaddedId("ab_", abbrev_map[static_cast<size_t>(muni)])));
    // Registration dates track registration numbers with ~5% exceptions.
    set(7, rng.Bernoulli(0.05)
               ? Value(rng.UniformInt(0, 2 * num_rows))
               : Value(2 * r));
    set(8, Value(precinct));  // precinct -> county exact
    set(9, Value(party));
    set(10, Value(street));
    // ~18% of voters use a PO box as mail address.
    set(11, rng.Bernoulli(0.18) ? Value(int64_t{100000} +
                                        rng.UniformInt(0, 999))
                                : Value(street));
    set(12, Value(rng.Zipf(4, 1.0)));
    set(13, Value(rng.UniformInt(0, 2)));
    set(14, Value(rng.Zipf(7, 0.9)));
    set(15, Value(phone_perm[static_cast<size_t>(county)]));
    set(16, Value(age + static_cast<int64_t>(
                            std::llround(rng.Normal(0.0, 10.0)))));
    set(17, Value(rng.UniformInt(2008, 2024)));
    set(18, Value(precinct * 3 + rng.UniformInt(0, 2)));
    // Constant within each (county, party) class: discovered at level 3.
    set(19, Value(county * 5 + party));
    set(20, Value(zip * 2 + rng.UniformInt(0, 1)));
    set(21, Value(school_perm[static_cast<size_t>(county * 5 + party)]));
    set(22, Value(fire_perm[static_cast<size_t>(precinct)]));
    // Mostly ordered by zip with ~10% exceptions.
    set(23, rng.Bernoulli(0.10) ? Value(3000 - zip * 2)
                                : Value(zip * 2));
    set(24, Value(rng.UniformInt(1, 8)));
    // Exact inverse of registrationDate.
    if (num_attributes > 25) {
      int64_t reg_date = row[7].as_int();
      set(25, Value(4 * num_rows - reg_date));
    }
    set(26, Value(rng.Zipf(15, 1.3)));
    set(27, Value(precinct * 2 + rng.UniformInt(0, 1)));
    set(28, Value(rng.Zipf(6, 1.1)));
    set(29, Value(2 * r + rng.UniformInt(0, 1)));
    table.AppendRow(row);
  }
  return table;
}

}  // namespace aod
