// Synthetic stand-in for the paper's `flight` dataset (BTS, 1M x 35).
//
// We do not have the Bureau of Transportation Statistics export, so we
// synthesize a relation with the statistical structure the experiments
// exercise (see DESIGN.md "Substitutions"):
//   - a key column and several low-cardinality categorical columns that
//     shape the context partitions;
//   - delay columns with controlled approximate order compatibility,
//     including arrDelay ~ lateAircraftDelay at a ~9.5% violation rate
//     (the paper's Exp-4 flagship AOC, true factor 9.5% vs the iterative
//     validator's 10.5% overestimate);
//   - an airport-id/IATA-code pair that is bijective per airport (exact
//     FD) yet only approximately order compatible (~8%, the Exp-6 AOC);
//   - exactly-dependent pairs (month -> quarter, a constant year) so the
//     exact-discovery and pruning paths stay exercised.
#ifndef AOD_GEN_FLIGHT_GENERATOR_H_
#define AOD_GEN_FLIGHT_GENERATOR_H_

#include <cstdint>

#include "data/table.h"

namespace aod {

/// Canonical attribute count of the simulated flight schema.
inline constexpr int kFlightMaxAttributes = 35;

/// Generates `num_rows` rows with the first `num_attributes` columns of
/// the flight schema (<= 35). The default 10 columns are the ones the
/// paper profiles in its headline experiments. Deterministic in `seed`.
Table GenerateFlightTable(int64_t num_rows, int num_attributes = 10,
                          uint64_t seed = 42);

}  // namespace aod

#endif  // AOD_GEN_FLIGHT_GENERATOR_H_
