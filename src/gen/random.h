// Deterministic pseudo-random generation for the dataset simulators.
//
// Every generator in libaod takes an explicit seed so experiments are
// reproducible run-to-run and machine-to-machine (std::mt19937 +
// std::uniform_int_distribution would not be: distribution
// implementations differ across standard libraries).
#ifndef AOD_GEN_RANDOM_H_
#define AOD_GEN_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aod {

/// xoshiro256** seeded via SplitMix64. Fast, high-quality, portable.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextUint64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p.
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Zipf-distributed integer in [0, n) with exponent s (s = 0 reduces to
  /// uniform). Sampled by inverse transform over precomputed CDF would be
  /// heavy per-call; we use the rejection-free cutoff method acceptable
  /// for the small n used by categorical columns.
  int64_t Zipf(int64_t n, double s);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  // Cached second Box-Muller variate.
  bool has_spare_ = false;
  double spare_ = 0.0;
  // Zipf CDF cache for the most recent (n, s) pair.
  int64_t zipf_n_ = -1;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace aod

#endif  // AOD_GEN_RANDOM_H_
