// Controlled dirtiness for clean synthetic tables.
//
// The paper's motivating example (Table 1) is a data-entry error — "10%
// instead of 1%", a concatenated zero — that breaks an intended OC. These
// injectors plant exactly such errors at a configurable rate so that
// (a) exact discovery misses the intended dependency and (b) approximate
// discovery recovers it with a measurable approximation factor.
#ifndef AOD_GEN_ERROR_INJECTOR_H_
#define AOD_GEN_ERROR_INJECTOR_H_

#include <cstdint>

#include "common/status.h"
#include "data/table.h"

namespace aod {

/// Multiplies a `rate` fraction of a numeric column's cells by `factor`
/// (the paper's concatenated-zero error is factor = 10). Returns the
/// number of cells modified.
Result<int64_t> InjectScaleErrors(Table* table, const std::string& column,
                                  double rate, double factor, uint64_t seed);

/// Swaps the cell values of random row pairs within one column for a
/// `rate` fraction of rows — order-violating but value-preserving noise.
Result<int64_t> InjectCellSwaps(Table* table, const std::string& column,
                                double rate, uint64_t seed);

/// Nulls out a `rate` fraction of a column's cells (missing data).
Result<int64_t> InjectNulls(Table* table, const std::string& column,
                            double rate, uint64_t seed);

/// Replaces a `rate` fraction of a numeric column's cells with extreme
/// outliers of magnitude `magnitude` times the column's max.
Result<int64_t> InjectOutliers(Table* table, const std::string& column,
                               double rate, double magnitude, uint64_t seed);

}  // namespace aod

#endif  // AOD_GEN_ERROR_INJECTOR_H_
