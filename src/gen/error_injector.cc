#include "gen/error_injector.h"

#include <cmath>

#include "gen/random.h"

namespace aod {
namespace {

Result<int> NumericColumnIndex(const Table& table, const std::string& name) {
  AOD_ASSIGN_OR_RETURN(int idx, table.schema().FieldIndex(name));
  DataType type = table.schema().field(idx).type;
  if (type == DataType::kString) {
    return Status::InvalidArgument("column '" + name + "' is not numeric");
  }
  return idx;
}

Value Scaled(const Value& v, double factor) {
  if (v.is_null()) return v;
  if (v.is_int()) {
    return Value(static_cast<int64_t>(
        std::llround(static_cast<double>(v.as_int()) * factor)));
  }
  return Value(v.as_double() * factor);
}

}  // namespace

Result<int64_t> InjectScaleErrors(Table* table, const std::string& column,
                                  double rate, double factor, uint64_t seed) {
  AOD_ASSIGN_OR_RETURN(int idx, NumericColumnIndex(*table, column));
  Rng rng(seed);
  int64_t modified = 0;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    if (!rng.Bernoulli(rate)) continue;
    Value v = table->GetValue(r, idx);
    if (v.is_null()) continue;
    table->SetValue(r, idx, Scaled(v, factor));
    ++modified;
  }
  return modified;
}

Result<int64_t> InjectCellSwaps(Table* table, const std::string& column,
                                double rate, uint64_t seed) {
  AOD_ASSIGN_OR_RETURN(int idx, table->schema().FieldIndex(column));
  Rng rng(seed);
  int64_t modified = 0;
  const int64_t n = table->num_rows();
  if (n < 2) return modified;
  for (int64_t r = 0; r < n; ++r) {
    if (!rng.Bernoulli(rate)) continue;
    int64_t other = rng.UniformInt(0, n - 1);
    if (other == r) continue;
    Value a = table->GetValue(r, idx);
    Value b = table->GetValue(other, idx);
    table->SetValue(r, idx, b);
    table->SetValue(other, idx, a);
    modified += 2;
  }
  return modified;
}

Result<int64_t> InjectNulls(Table* table, const std::string& column,
                            double rate, uint64_t seed) {
  AOD_ASSIGN_OR_RETURN(int idx, table->schema().FieldIndex(column));
  Rng rng(seed);
  int64_t modified = 0;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    if (!rng.Bernoulli(rate)) continue;
    table->SetValue(r, idx, Value::Null());
    ++modified;
  }
  return modified;
}

Result<int64_t> InjectOutliers(Table* table, const std::string& column,
                               double rate, double magnitude, uint64_t seed) {
  AOD_ASSIGN_OR_RETURN(int idx, NumericColumnIndex(*table, column));
  Rng rng(seed);
  double max_abs = 1.0;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    Value v = table->GetValue(r, idx);
    if (!v.is_null()) max_abs = std::max(max_abs, std::fabs(v.AsNumeric()));
  }
  int64_t modified = 0;
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    if (!rng.Bernoulli(rate)) continue;
    double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    Value v = table->GetValue(r, idx);
    if (v.is_null()) continue;
    if (v.is_int()) {
      table->SetValue(
          r, idx,
          Value(static_cast<int64_t>(std::llround(sign * magnitude * max_abs))));
    } else {
      table->SetValue(r, idx, Value(sign * magnitude * max_abs));
    }
    ++modified;
  }
  return modified;
}

}  // namespace aod
