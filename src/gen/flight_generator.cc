#include "gen/flight_generator.h"

#include "common/macros.h"
#include "gen/dataset_generator.h"

namespace aod {

Table GenerateFlightTable(int64_t num_rows, int num_attributes,
                          uint64_t seed) {
  AOD_CHECK_MSG(num_attributes >= 1 && num_attributes <= kFlightMaxAttributes,
                "flight schema has 1..%d attributes", kFlightMaxAttributes);

  std::vector<ColumnSpec> specs;
  auto add = [&specs](ColumnSpec spec) { specs.push_back(std::move(spec)); };

  // --- the 10 profiled attributes ---
  add({.name = "flightId", .kind = ColumnKind::kSequentialKey});
  add({.name = "airline", .kind = ColumnKind::kZipfInt, .cardinality = 15,
       .zipf_s = 1.0});
  add({.name = "originAirportId", .kind = ColumnKind::kZipfInt,
       .cardinality = 200, .zipf_s = 0.8});
  add({.name = "depTimeSlot", .kind = ColumnKind::kUniformInt,
       .cardinality = 96});
  // Delay in sub-minute resolution: effectively distinct per flight,
  // which keeps the seeded violation rates below size-invariant.
  add({.name = "depDelay", .kind = ColumnKind::kUniformInt,
       .cardinality = int64_t{1} << 40});
  // arrDelay tracks depDelay except for ~8% of rows.
  add({.name = "arrDelay", .kind = ColumnKind::kMonotoneWithErrors,
       .base_column = 4, .violation_rate = 0.08});
  // The Exp-4 flagship AOC: arrDelay ~ lateAircraftDelay with a true
  // approximation factor of (4*0.09 + 0.495)/9 = 9.5% that the greedy
  // iterative validator overestimates as (5*0.09 + 0.495)/9 = 10.5%.
  add({.name = "lateAircraftDelay", .kind = ColumnKind::kClusteredErrors,
       .base_column = 5, .flip_rate = 0.495, .motif_rate = 0.09});
  add({.name = "distance", .kind = ColumnKind::kUniformInt,
       .cardinality = 3000});
  add({.name = "airTime", .kind = ColumnKind::kMonotoneWithErrors,
       .base_column = 7, .violation_rate = 0.05});
  // The Exp-6 AOC: bijective per airport (exact FD both ways) but only
  // ~92% of the id->code mapping is order preserving.
  add({.name = "originIataCode", .kind = ColumnKind::kMonotoneDomainErrors,
       .base_column = 2, .violation_rate = 0.08});

  // --- the attribute-sweep tail (Exp-2 uses up to 35) ---
  add({.name = "destAirportId", .kind = ColumnKind::kZipfInt,
       .cardinality = 200, .zipf_s = 0.8});
  add({.name = "carrierDelay", .kind = ColumnKind::kNoisyLinear,
       .base_column = 5, .scale = 0.5, .noise_stddev = 8.0});
  add({.name = "weatherDelay", .kind = ColumnKind::kZipfInt,
       .cardinality = 20, .zipf_s = 1.2});
  add({.name = "securityDelay", .kind = ColumnKind::kZipfInt,
       .cardinality = 5, .zipf_s = 1.5});
  add({.name = "taxiOut", .kind = ColumnKind::kUniformInt,
       .cardinality = 35});
  add({.name = "taxiIn", .kind = ColumnKind::kUniformInt,
       .cardinality = 18});
  add({.name = "wheelsOffSlot", .kind = ColumnKind::kNoisyLinear,
       .base_column = 3, .scale = 1.0, .noise_stddev = 1.0});
  add({.name = "month", .kind = ColumnKind::kUniformInt, .cardinality = 12});
  // Exact dependency: quarter is a monotone function of month.
  add({.name = "quarter", .kind = ColumnKind::kNoisyLinear,
       .base_column = 17, .scale = 0.25, .noise_stddev = 0.0});
  add({.name = "dayOfWeek", .kind = ColumnKind::kUniformInt,
       .cardinality = 7});
  add({.name = "dayOfMonth", .kind = ColumnKind::kUniformInt,
       .cardinality = 28});
  add({.name = "flightNum", .kind = ColumnKind::kUniformInt,
       .cardinality = 6000});
  add({.name = "tailNum", .kind = ColumnKind::kUniformInt,
       .cardinality = 3000});
  add({.name = "cancelled", .kind = ColumnKind::kZipfInt, .cardinality = 2,
       .zipf_s = 3.0});
  add({.name = "diverted", .kind = ColumnKind::kZipfInt, .cardinality = 2,
       .zipf_s = 4.0});
  // Functionally determined by airline but order-incompatible with it.
  add({.name = "airlineRegion", .kind = ColumnKind::kDerivedPermuted,
       .base_column = 1});
  // Per-airport elevation: exact FD originAirportId -> elevation.
  add({.name = "elevation", .kind = ColumnKind::kDerivedPermuted,
       .base_column = 2});
  add({.name = "arrTimeSlot", .kind = ColumnKind::kNoisyLinear,
       .base_column = 3, .scale = 1.0, .noise_stddev = 4.0});
  add({.name = "fuelBurn", .kind = ColumnKind::kNoisyLinear,
       .base_column = 8, .scale = 10.0, .noise_stddev = 20.0});
  add({.name = "seats", .kind = ColumnKind::kUniformInt, .cardinality = 40});
  add({.name = "paxCount", .kind = ColumnKind::kNoisyLinear,
       .base_column = 29, .scale = 0.8, .noise_stddev = 4.0});
  add({.name = "gate", .kind = ColumnKind::kUniformInt, .cardinality = 80});
  add({.name = "runway", .kind = ColumnKind::kUniformInt, .cardinality = 7});
  // Constant column: the exact OFD {}: [] -> year prunes its supersets.
  add({.name = "year", .kind = ColumnKind::kUniformInt, .cardinality = 1});
  add({.name = "bonusMiles", .kind = ColumnKind::kMonotoneWithErrors,
       .base_column = 7, .violation_rate = 0.15});

  AOD_CHECK(static_cast<int>(specs.size()) == kFlightMaxAttributes);
  specs.resize(static_cast<size_t>(num_attributes));
  return GenerateTable(specs, num_rows, seed);
}

}  // namespace aod
