#include "gen/random.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace aod {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  AOD_DCHECK(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t x;
  do {
    x = NextUint64();
  } while (x >= limit);
  return lo + static_cast<int64_t>(x % range);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u;
  double v;
  double s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

int64_t Rng::Zipf(int64_t n, double s) {
  AOD_CHECK(n > 0);
  if (s <= 0.0) return UniformInt(0, n - 1);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(static_cast<size_t>(n));
    double sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[static_cast<size_t>(i)] = sum;
    }
    for (auto& c : zipf_cdf_) c /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = UniformDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<int64_t>(it - zipf_cdf_.begin());
}

}  // namespace aod
