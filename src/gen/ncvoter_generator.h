// Synthetic stand-in for the paper's `ncvoter` dataset (NCSBE, 5M x 30).
//
// We do not have the North Carolina State Board of Elections export, so
// we synthesize a voter-registration-shaped relation (see DESIGN.md
// "Substitutions"):
//   - administrative hierarchies (county -> zip -> ward, county ->
//     precinct -> district) yielding exact ODs and, at deeper contexts,
//     dependencies that only appear at higher lattice levels — the
//     paper's explanation for ncvoter's higher discovery runtime;
//   - municipality/abbreviation string pair that is order compatible for
//     most municipalities with out-of-order abbreviations for some (the
//     paper's "RAL" vs "CLT" Exp-4 example, ~18-20% factor);
//   - street/mail address pair equal for most voters with PO-box
//     exceptions (the Exp-6 streetAddress ~ mailAddress AOC, ~18%);
//   - registration dates almost ordered by registration number (~5%).
#ifndef AOD_GEN_NCVOTER_GENERATOR_H_
#define AOD_GEN_NCVOTER_GENERATOR_H_

#include <cstdint>

#include "data/table.h"

namespace aod {

/// Canonical attribute count of the simulated ncvoter schema.
inline constexpr int kNcVoterMaxAttributes = 30;

/// Generates `num_rows` rows with the first `num_attributes` columns of
/// the ncvoter schema (<= 30). Deterministic in `seed`.
Table GenerateNcVoterTable(int64_t num_rows, int num_attributes = 10,
                           uint64_t seed = 1729);

}  // namespace aod

#endif  // AOD_GEN_NCVOTER_GENERATOR_H_
