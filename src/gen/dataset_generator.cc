#include "gen/dataset_generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/macros.h"

namespace aod {
namespace {

char Digit(int64_t v, int64_t place) { return '0' + (v / place) % 10; }

std::string CategoryName(const std::string& prefix, int64_t v) {
  std::string out = prefix;
  out += '_';
  out += Digit(v, 100);
  out += Digit(v, 10);
  out += Digit(v, 1);
  return out;
}

}  // namespace

Table GenerateTable(const std::vector<ColumnSpec>& specs, int64_t num_rows,
                    uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  for (const auto& spec : specs) {
    DataType type = spec.kind == ColumnKind::kCategoricalString
                        ? DataType::kString
                        : DataType::kInt64;
    schema.AddField({spec.name, type});
  }
  Table table(std::move(schema));

  // Column-major generation: derived columns read earlier columns.
  std::vector<std::vector<int64_t>> ints(specs.size());
  std::vector<std::vector<std::string>> strings(specs.size());

  for (size_t c = 0; c < specs.size(); ++c) {
    const ColumnSpec& spec = specs[c];
    if (spec.base_column >= 0) {
      AOD_CHECK_MSG(static_cast<size_t>(spec.base_column) < c,
                    "column '%s': base must precede it", spec.name.c_str());
      AOD_CHECK_MSG(!ints[static_cast<size_t>(spec.base_column)].empty(),
                    "column '%s': base must be an integer column",
                    spec.name.c_str());
    }
    switch (spec.kind) {
      case ColumnKind::kSequentialKey: {
        ints[c].resize(static_cast<size_t>(num_rows));
        std::iota(ints[c].begin(), ints[c].end(), 0);
        break;
      }
      case ColumnKind::kUniformInt: {
        ints[c].reserve(static_cast<size_t>(num_rows));
        for (int64_t r = 0; r < num_rows; ++r) {
          ints[c].push_back(rng.UniformInt(0, spec.cardinality - 1));
        }
        break;
      }
      case ColumnKind::kZipfInt: {
        ints[c].reserve(static_cast<size_t>(num_rows));
        for (int64_t r = 0; r < num_rows; ++r) {
          ints[c].push_back(rng.Zipf(spec.cardinality, spec.zipf_s));
        }
        break;
      }
      case ColumnKind::kNoisyLinear: {
        const auto& base = ints[static_cast<size_t>(spec.base_column)];
        ints[c].reserve(static_cast<size_t>(num_rows));
        for (int64_t r = 0; r < num_rows; ++r) {
          double v = spec.scale * static_cast<double>(
                                      base[static_cast<size_t>(r)]) +
                     rng.Normal(0.0, spec.noise_stddev);
          ints[c].push_back(static_cast<int64_t>(std::llround(v)));
        }
        break;
      }
      case ColumnKind::kMonotoneWithErrors: {
        const auto& base = ints[static_cast<size_t>(spec.base_column)];
        int64_t lo = 0;
        int64_t hi = 0;
        for (int64_t v : base) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        ints[c].reserve(static_cast<size_t>(num_rows));
        for (int64_t r = 0; r < num_rows; ++r) {
          int64_t v = base[static_cast<size_t>(r)];
          if (rng.Bernoulli(spec.violation_rate)) {
            // An out-of-order value drawn from the opposite end of the
            // domain, guaranteeing real swaps rather than harmless jitter.
            ints[c].push_back(3 * (lo + hi) / 2 - v +
                              rng.UniformInt(-2, 2));
          } else {
            // Strictly monotone transform (2v keeps room for the noise
            // cases to land between legitimate values).
            ints[c].push_back(2 * v);
          }
        }
        break;
      }
      case ColumnKind::kMonotoneDomainErrors: {
        const auto& base = ints[static_cast<size_t>(spec.base_column)];
        int64_t max_base = 0;
        for (int64_t v : base) {
          AOD_CHECK_MSG(v >= 0, "kMonotoneDomainErrors needs >=0 base");
          max_base = std::max(max_base, v);
        }
        // Start from the order-preserving identity, then swap the images
        // of randomly chosen domain-value pairs.
        std::vector<int64_t> mapping(static_cast<size_t>(max_base) + 1);
        std::iota(mapping.begin(), mapping.end(), 0);
        int64_t swaps = static_cast<int64_t>(
            spec.violation_rate * static_cast<double>(mapping.size()) / 2.0);
        for (int64_t s = 0; s < swaps; ++s) {
          size_t i = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(mapping.size()) - 1));
          size_t j = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(mapping.size()) - 1));
          std::swap(mapping[i], mapping[j]);
        }
        ints[c].reserve(static_cast<size_t>(num_rows));
        for (int64_t r = 0; r < num_rows; ++r) {
          ints[c].push_back(
              mapping[static_cast<size_t>(base[static_cast<size_t>(r)])]);
        }
        break;
      }
      case ColumnKind::kDerivedPermuted: {
        const auto& base = ints[static_cast<size_t>(spec.base_column)];
        int64_t max_base = 0;
        for (int64_t v : base) max_base = std::max(max_base, v);
        std::vector<int64_t> perm(static_cast<size_t>(max_base) + 1);
        std::iota(perm.begin(), perm.end(), 0);
        rng.Shuffle(&perm);
        ints[c].reserve(static_cast<size_t>(num_rows));
        for (int64_t r = 0; r < num_rows; ++r) {
          int64_t v = base[static_cast<size_t>(r)];
          AOD_CHECK_MSG(v >= 0, "kDerivedPermuted needs non-negative base");
          ints[c].push_back(perm[static_cast<size_t>(v)]);
        }
        break;
      }
      case ColumnKind::kClusteredErrors: {
        const auto& base = ints[static_cast<size_t>(spec.base_column)];
        std::vector<int64_t> distinct = base;
        std::sort(distinct.begin(), distinct.end());
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        // The tax-column shape of the paper's Table 1, rank-compressed:
        // values [20, 25, 0.3, 120, 1.5, 165, 1.8, 72, 160] (x10K) keep
        // the relative order 3rd < 5th < 7th < 1st < 2nd < 8th < 4th <
        // 9th < 6th. Greedy removal: 5 per block; minimal: 4 per block.
        static constexpr int64_t kMotif[9] = {6, 8, 0, 14, 2, 17, 4, 10, 16};
        const size_t num_values = distinct.size();
        std::vector<int64_t> mapped(num_values);
        for (size_t block_start = 0; block_start < num_values;
             block_start += 9) {
          int64_t block = static_cast<int64_t>(block_start / 9);
          size_t block_len = std::min<size_t>(9, num_values - block_start);
          double u = rng.UniformDouble();
          bool motif = block_len == 9 && u < spec.motif_rate;
          bool flip = block_len == 9 && !motif &&
                      u < spec.motif_rate + spec.flip_rate;
          int64_t flip_slot = flip ? rng.UniformInt(0, 7) : -1;
          for (size_t s = 0; s < block_len; ++s) {
            int64_t slot = static_cast<int64_t>(s);
            int64_t local;
            if (motif) {
              local = kMotif[s];
            } else if (slot == flip_slot) {
              local = 2 * (slot + 1);
            } else if (slot == flip_slot + 1 && flip) {
              local = 2 * (slot - 1);
            } else {
              local = 2 * slot;
            }
            mapped[block_start + s] = 18 * block + local;
          }
        }
        ints[c].reserve(static_cast<size_t>(num_rows));
        for (int64_t r = 0; r < num_rows; ++r) {
          size_t rank = static_cast<size_t>(
              std::lower_bound(distinct.begin(), distinct.end(),
                               base[static_cast<size_t>(r)]) -
              distinct.begin());
          ints[c].push_back(mapped[rank]);
        }
        break;
      }
      case ColumnKind::kCategoricalString: {
        strings[c].reserve(static_cast<size_t>(num_rows));
        for (int64_t r = 0; r < num_rows; ++r) {
          strings[c].push_back(CategoryName(
              spec.name, rng.UniformInt(0, spec.cardinality - 1)));
        }
        break;
      }
    }
  }

  std::vector<Value> row(specs.size());
  for (int64_t r = 0; r < num_rows; ++r) {
    for (size_t c = 0; c < specs.size(); ++c) {
      if (!strings[c].empty()) {
        row[c] = Value(strings[c][static_cast<size_t>(r)]);
      } else {
        row[c] = Value(ints[c][static_cast<size_t>(r)]);
      }
    }
    table.AppendRow(row);
  }
  return table;
}

}  // namespace aod
