// Generic configurable table generator.
//
// Builds synthetic relations from declarative column specs. Used directly
// by tests and benchmarks that need controlled structure (e.g. "a pair of
// columns that is order compatible except for a 7% violation rate"), and
// as the toolkit the flight/ncvoter simulators are assembled from.
#ifndef AOD_GEN_DATASET_GENERATOR_H_
#define AOD_GEN_DATASET_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "gen/random.h"

namespace aod {

/// How a generated column derives its values.
enum class ColumnKind {
  /// 0, 1, 2, ... (a key; every equivalence class is a singleton).
  kSequentialKey,
  /// Uniform integers in [0, cardinality).
  kUniformInt,
  /// Zipf-distributed integers in [0, cardinality) with exponent zipf_s.
  kZipfInt,
  /// round(scale * base + noise), noise ~ N(0, noise_stddev): numerically
  /// correlated with the base column; order compatible with it up to the
  /// noise level.
  kNoisyLinear,
  /// A strictly monotone transform of the base column, except that a
  /// violation_rate fraction of rows receive an out-of-order value —
  /// the canonical "approximate OC with a known violation rate".
  kMonotoneWithErrors,
  /// Equal to the base column's value mapped through a fixed random
  /// permutation of [0, cardinality): functionally determined by base
  /// (exact FD base -> this) but not order compatible with it.
  kDerivedPermuted,
  /// A bijective, mostly-monotone mapping of the base column: a
  /// violation_rate fraction of the base's *domain values* get their
  /// images swapped out of order. The FD base -> this stays exact in both
  /// directions while the OC base ~ this holds only approximately — the
  /// shape of the paper's originAirport ~ IATACode example.
  kMonotoneDomainErrors,
  /// Uniform categorical strings "name_000".."name_<cardinality-1>".
  kCategoricalString,
  /// A monotone transform of the base column with *clustered* errors over
  /// blocks of nine consecutive distinct base values:
  ///   - a motif_rate fraction of blocks reproduce the exact swap pattern
  ///     of the paper's Example 3.1 (the Table 1 tax column), on which
  ///     the greedy iterative validator provably removes 5 tuples per
  ///     block where the minimum is 4;
  ///   - a flip_rate fraction of blocks contain one adjacent-value flip
  ///     (minimal removal 1, and the greedy validator also achieves 1);
  ///   - remaining blocks are clean.
  /// With distinct base values this pins both the true approximation
  /// factor, (4*motif_rate + flip_rate)/9, and the greedy overestimate,
  /// (5*motif_rate + flip_rate)/9 — the mechanism behind the flagship
  /// arrDelay ~ lateAircraftDelay reproduction (paper: 9.5% vs 10.5%).
  kClusteredErrors,
};

struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kUniformInt;
  /// Distinct values for the distribution kinds.
  int64_t cardinality = 100;
  double zipf_s = 0.0;
  /// Index of the base column for the derived kinds; must be < this
  /// column's own index.
  int base_column = -1;
  double scale = 1.0;
  double noise_stddev = 0.0;
  /// Fraction of rows given an out-of-order value (kMonotoneWithErrors).
  double violation_rate = 0.0;
  /// kClusteredErrors: fraction of blocks with one adjacent flip.
  double flip_rate = 0.0;
  /// kClusteredErrors: fraction of blocks carrying the Example 3.1 motif.
  double motif_rate = 0.0;
};

/// Generates `num_rows` rows from the specs. Deterministic in `seed`.
Table GenerateTable(const std::vector<ColumnSpec>& specs, int64_t num_rows,
                    uint64_t seed);

}  // namespace aod

#endif  // AOD_GEN_DATASET_GENERATOR_H_
