#include "od/canonical_od.h"

#include <cmath>

namespace aod {
namespace {

std::string ContextString(const AttributeSet& context,
                          const std::function<std::string(int)>& name_of) {
  return context.ToString(name_of);
}

}  // namespace

std::string CanonicalOc::ToString(const EncodedTable& table) const {
  auto name_of = [&table](int i) { return table.name(i); };
  std::string rhs = opposite ? "desc(" + table.name(b) + ")" : table.name(b);
  return ContextString(context, name_of) + ": " + table.name(a) + " ~ " +
         rhs;
}

std::string CanonicalOc::ToString() const {
  auto name_of = [](int i) { return std::to_string(i); };
  std::string rhs =
      opposite ? "desc(" + std::to_string(b) + ")" : std::to_string(b);
  return ContextString(context, name_of) + ": " + std::to_string(a) + " ~ " +
         rhs;
}

std::string CanonicalOfd::ToString(const EncodedTable& table) const {
  auto name_of = [&table](int i) { return table.name(i); };
  return ContextString(context, name_of) + ": [] -> " + table.name(a);
}

std::string CanonicalOfd::ToString() const {
  auto name_of = [](int i) { return std::to_string(i); };
  return ContextString(context, name_of) + ": [] -> " + std::to_string(a);
}

int64_t MaxRemovals(double epsilon, int64_t num_rows) {
  if (epsilon <= 0.0) return 0;
  if (epsilon >= 1.0) return num_rows;
  return static_cast<int64_t>(
      std::floor(epsilon * static_cast<double>(num_rows) + 1e-9));
}

}  // namespace aod
