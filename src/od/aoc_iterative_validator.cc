#include "od/aoc_iterative_validator.h"

#include <algorithm>

#include "algo/inversions.h"

namespace aod {
namespace {

/// View over one equivalence class during the greedy removal loop; all
/// arrays are scratch-owned and re-sliced per class.
struct ClassState {
  std::vector<int32_t>* rows;       // sorted by [A ASC, B ASC]
  std::vector<int32_t>* ra;         // A-ranks in sorted order
  std::vector<int32_t>* rb;         // B-ranks in sorted order (dense)
  std::vector<int64_t>* swap_cnt;   // swaps each live tuple participates in
  std::vector<uint8_t>* alive;
};

bool Swapped(const ClassState& s, size_t i, size_t j) {
  // Def. 2.5: (s < t on A and t < s on B) in either orientation.
  return ((*s.ra)[i] < (*s.ra)[j] && (*s.rb)[j] < (*s.rb)[i]) ||
         ((*s.ra)[j] < (*s.ra)[i] && (*s.rb)[i] < (*s.rb)[j]);
}

}  // namespace

ValidationOutcome ValidateAocIterative(
    const EncodedTable& table, const StrippedPartition& context_partition,
    int a, int b, double epsilon, int64_t table_rows,
    const ValidatorOptions& options, ValidatorScratch* scratch) {
  const auto& ranks_a = table.ranks(a);
  const auto& ranks_b = table.ranks(b);
  const int64_t card_b = table.column(b).cardinality;
  const int64_t max_removals = MaxRemovals(epsilon, table_rows);
  // Bidirectional polarity: reverse B's rank order (see ValidatorOptions).
  // Dense flip (card-1 - r) instead of negation keeps the values valid
  // Fenwick indices for the allocation-free swap counter.
  const int32_t sign = options.opposite_polarity ? -1 : 1;
  auto rb_of = [&](int32_t row) {
    int32_t r = ranks_b[static_cast<size_t>(row)];
    return sign > 0 ? r : static_cast<int32_t>(card_b - 1) - r;
  };

  ValidationOutcome out;
  ValidatorScratch local;
  ValidatorScratch& sc = scratch == nullptr ? local : *scratch;
  ClassState st{&sc.rows(), &sc.ranks_a(), &sc.ranks_b(), &sc.swap_counts(),
                &sc.alive()};
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    // Line 3: order the class by [A ASC, B ASC].
    st.rows->assign(cls.begin(), cls.end());
    std::sort(st.rows->begin(), st.rows->end(), [&](int32_t s, int32_t t) {
      int32_t sa = ranks_a[static_cast<size_t>(s)];
      int32_t ta = ranks_a[static_cast<size_t>(t)];
      if (sa != ta) return sa < ta;
      return rb_of(s) < rb_of(t);
    });
    const size_t m = st.rows->size();
    st.ra->resize(m);
    st.rb->resize(m);
    st.swap_cnt->resize(m);
    for (size_t i = 0; i < m; ++i) {
      (*st.ra)[i] = ranks_a[static_cast<size_t>((*st.rows)[i])];
      (*st.rb)[i] = rb_of((*st.rows)[i]);
    }
    // Line 4: per-tuple swap counts. With ties broken by B, equal-A pairs
    // never invert, so the inversion participation of the B-projection is
    // exactly the swap count (the paper computes the same quantity with a
    // merge-sort variant). The B-ranks are already dense in [0, card_b),
    // so no sort-compression pass is needed.
    PerElementInversionsDense(*st.rb, card_b, &sc.inversions(),
                              st.swap_cnt->data());
    st.alive->assign(m, 1);

    // Lines 6-15: repeatedly drop a tuple with the most swaps.
    while (true) {
      // Line 5/12 equivalent: select the live tuple with maximum count.
      size_t best = m;
      int64_t best_cnt = -1;
      for (size_t i = 0; i < m; ++i) {
        if ((*st.alive)[i] && (*st.swap_cnt)[i] > best_cnt) {
          best = i;
          best_cnt = (*st.swap_cnt)[i];
        }
      }
      if (best == m || best_cnt == 0) break;  // Line 8: class is swap-free.
      (*st.alive)[best] = 0;
      ++out.removal_size;
      if (options.collect_removal_set) {
        out.removal_rows.push_back((*st.rows)[best]);
      }
      // Line 14: cross the threshold -> INVALID. The removal size reported
      // so far is only a lower bound on what this strategy would remove.
      if (options.early_exit && out.removal_size > max_removals) {
        out.valid = false;
        out.early_exit = true;
        out.approx_factor = static_cast<double>(out.removal_size) /
                            static_cast<double>(table_rows);
        return out;
      }
      // Lines 9-11: retract the removed tuple's swaps from the survivors.
      for (size_t i = 0; i < m; ++i) {
        if ((*st.alive)[i] && Swapped(st, best, i)) {
          --(*st.swap_cnt)[i];
        }
      }
    }
  }
  out.valid = out.removal_size <= max_removals;
  out.approx_factor = table_rows == 0
                          ? 0.0
                          : static_cast<double>(out.removal_size) /
                                static_cast<double>(table_rows);
  return out;
}

}  // namespace aod
