// Instrumentation counters for a discovery run.
//
// The paper's Exp-3 argument rests on *where* discovery time goes (up to
// 99.6% in AOC validation under the iterative validator, cut by 99.8%
// with the optimal one) and Exp-5 on *where in the lattice* dependencies
// are found. These counters make both measurable.
#ifndef AOD_OD_DISCOVERY_STATS_H_
#define AOD_OD_DISCOVERY_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aod {

struct DiscoveryStats {
  double total_seconds = 0.0;
  // CPU time summed across workers: with num_threads > 1 these can add up
  // to far more than the elapsed time (that is the point of parallelism).
  // The *_wall_seconds fields below are what a user actually waits.
  double oc_validation_seconds = 0.0;
  double ofd_validation_seconds = 0.0;
  /// CPU time in the FD/AFD validators (0 unless those kinds are enabled;
  /// their stats lines print only when the kinds actually ran, so the
  /// default-kind report is unchanged).
  double fd_validation_seconds = 0.0;
  double afd_validation_seconds = 0.0;
  double partition_seconds = 0.0;

  // Wall-clock per driver phase, accumulated over levels: candidate
  // generation, candidate validation, and the partition pipeline.
  // Partitions are prefetched on the pool while the merge runs, so
  // partition_wall_seconds counts only the residual synchronization —
  // catalog publication blocking on stragglers plus the explicit waits
  // before budget enforcement and at the end of the run — not a
  // dedicated materialization barrier.
  double candidate_wall_seconds = 0.0;
  double validation_wall_seconds = 0.0;
  double partition_wall_seconds = 0.0;
  /// Wall clock of the serial key-ordered merge phase (the cross-shard
  /// reducer when sharding is on), accumulated over levels.
  double merge_wall_seconds = 0.0;
  /// Worker threads the run executed on (1 = serial).
  int threads_used = 1;

  /// Logical shards validation was distributed over (0 = unsharded).
  int shards_used = 0;
  /// Frame bytes crossing the shard seam, total and per shard (both
  /// directions: shipped base partitions, candidate batches, results).
  int64_t shard_bytes_shipped = 0;
  std::vector<int64_t> shard_bytes_per_shard;
  /// The same traffic split by codec outcome: what actually crossed the
  /// wire (post-compression; equals shard_bytes_shipped) vs. what the
  /// identical run would have shipped with every codec forced raw —
  /// raw/wire is the run's observable compression ratio. Folded from
  /// the shard stats footers plus the coordinator's own result decodes.
  int64_t shard_bytes_raw = 0;
  int64_t shard_bytes_wire = 0;
  /// Frame-level raw/wire bytes by frame type, counted at the
  /// coordinator's encode/decode sites (exp8's per-type breakdown).
  struct FrameTypeBytes {
    std::string frame_type;
    int64_t bytes_raw = 0;
    int64_t bytes_wire = 0;
  };
  std::vector<FrameTypeBytes> shard_frame_bytes;
  /// Row-space sharding of the base-partition phase (0 = off). The
  /// per-shard entry is the wire size of the table-slice frame that
  /// shard received — the O(rows / row_shards) quantity exp8's
  /// row-shard dimension plots; the raw/wire pair covers both the
  /// sliced table frames and the returned fragment frames, so the row
  /// phase's compression ratio is observable separately from the
  /// candidate seam's.
  int row_shards_used = 0;
  std::vector<int64_t> row_shard_bytes_per_shard;
  int64_t row_shard_bytes_shipped = 0;
  int64_t row_shard_bytes_raw = 0;
  int64_t row_shard_bytes_wire = 0;
  /// Supervision counters (src/shard/supervisor.h): the recoveries the
  /// run survived. All zero on a fault-free run or with supervision off
  /// (shard_max_retries == 0).
  /// Level re-attempts across all shards (each respawn-and-re-execute
  /// after a fault counts once).
  int64_t shard_retries = 0;
  /// Fresh transport attempts built after the first per shard —
  /// respawned processes / reconnected sockets, including speculative
  /// backups.
  int64_t shard_respawns = 0;
  /// Speculative backup attempts that beat (lost to) their primary.
  int64_t shard_speculative_wins = 0;
  int64_t shard_speculative_losses = 0;
  /// Shards that degraded to in-process execution after retry
  /// exhaustion and stayed there for the rest of the run.
  int64_t shard_fallback_shards = 0;
  /// Shards whose stats footer was lost to a tolerated shutdown fault
  /// (their partition-side counters above contribute 0).
  int64_t shard_footers_missing = 0;

  // Exact partition-cache memory accounting (StrippedPartition::bytes(),
  // i.e. CSR payload + object headers). Peak is sampled at level
  // boundaries — the high-water mark eviction policy must fit under;
  // evicted is the total reclaimed by level-based eviction; final is what
  // remained resident when the run ended.
  int64_t partition_bytes_peak = 0;
  int64_t partition_bytes_evicted = 0;
  int64_t partition_bytes_final = 0;

  // Derivation-planner observability: keys derived by executing a
  // cost-based plan, the summed estimated plan cost, and the realized
  // cost (both in scanned rows — realized/estimated close to 1 means the
  // rows_covered proxy is predicting well).
  int64_t planner_derivations = 0;
  int64_t planner_cost_estimated = 0;
  int64_t planner_cost_realized = 0;
  /// Partitions dropped by budgeted eviction (re-derived on demand).
  int64_t partitions_evicted = 0;

  int64_t oc_candidates_validated = 0;
  int64_t ofd_candidates_validated = 0;
  int64_t fd_candidates_validated = 0;
  int64_t afd_candidates_validated = 0;
  /// OC pairs discarded by the candidate-set rule (A not in Cc+(X\{B}) or
  /// B not in Cc+(X\{A})) without touching the data.
  int64_t oc_candidates_pruned = 0;
  int64_t nodes_processed = 0;
  int64_t partitions_computed = 0;

  int levels_processed = 0;
  /// Index = lattice level (paper Fig. 5 x-axis); level of a dependency is
  /// the level of the node where it was validated (|context| + 1 for OFDs,
  /// |context| + 2 for OCs).
  std::vector<int64_t> ocs_per_level;
  std::vector<int64_t> ofds_per_level;
  std::vector<int64_t> fds_per_level;
  std::vector<int64_t> afds_per_level;
  std::vector<int64_t> nodes_per_level;

  /// Fraction of total runtime spent validating OC candidates. Computed
  /// from summed CPU time, so it can exceed 1 when num_threads > 1.
  double OcValidationShare() const;
  /// Mean lattice level of discovered OCs (paper Exp-5's 5.6 -> 4.3).
  double AverageOcLevel() const;
  int64_t TotalOcs() const;
  int64_t TotalOfds() const;
  int64_t TotalFds() const;
  int64_t TotalAfds() const;

  void RecordOcAtLevel(int level);
  void RecordOfdAtLevel(int level);
  void RecordFdAtLevel(int level);
  void RecordAfdAtLevel(int level);
  void RecordNodesAtLevel(int level, int64_t count);

  std::string ToString() const;
};

}  // namespace aod

#endif  // AOD_OD_DISCOVERY_STATS_H_
