#include "od/dependency_kind.h"

namespace aod {

const char* DependencyKindToString(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kOc:
      return "oc";
    case DependencyKind::kOfd:
      return "ofd";
    case DependencyKind::kFd:
      return "fd";
    case DependencyKind::kAfd:
      return "afd";
  }
  return "?";
}

std::string DependencyKindSet::ToString() const {
  std::string out;
  for (int i = 0; i < kNumDependencyKinds; ++i) {
    const DependencyKind kind = static_cast<DependencyKind>(i);
    if (!Contains(kind)) continue;
    if (!out.empty()) out += ",";
    out += DependencyKindToString(kind);
  }
  return out;
}

Result<DependencyKindSet> DependencyKindSet::Parse(const std::string& spec) {
  DependencyKindSet set;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string name = spec.substr(begin, end - begin);
    bool known = false;
    for (int i = 0; i < kNumDependencyKinds; ++i) {
      const DependencyKind kind = static_cast<DependencyKind>(i);
      if (name == DependencyKindToString(kind)) {
        set = set.With(kind);
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown dependency kind '" + name +
                                     "' (want oc, ofd, fd or afd)");
    }
    begin = end + 1;
  }
  if (set.empty()) {
    return Status::InvalidArgument("empty dependency kind set");
  }
  return set;
}

}  // namespace aod
