// Validation of OFD candidates X: [] -> A, exact and approximate.
//
// The approximate case uses the linear-time removal-count computation for
// approximate FDs established by Huhtala et al. (TANE [3]), which the
// paper adopts unchanged (Sec. 2.3): within each equivalence class of the
// context, keep the tuples carrying the most frequent A-value and remove
// the rest; the total removed is the minimal removal set size.
#ifndef AOD_OD_OFD_VALIDATOR_H_
#define AOD_OD_OFD_VALIDATOR_H_

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/validator_scratch.h"
#include "partition/stripped_partition.h"

namespace aod {

/// True iff A is constant within every class of the context partition.
bool ValidateOfdExact(const EncodedTable& table,
                      const StrippedPartition& context_partition, int a);

/// Validates the OFD approximately against `epsilon`. The removal set is
/// minimal. `table_rows` is |r| (the partition alone cannot supply it, as
/// stripped partitions drop singleton classes). `scratch` (optional)
/// replaces the per-class hash map with pooled dense counters.
ValidationOutcome ValidateOfdApprox(const EncodedTable& table,
                                    const StrippedPartition& context_partition,
                                    int a, double epsilon, int64_t table_rows,
                                    const ValidatorOptions& options = {},
                                    ValidatorScratch* scratch = nullptr);

}  // namespace aod

#endif  // AOD_OD_OFD_VALIDATOR_H_
