#include "od/fd_validator.h"

#include <algorithm>

namespace aod {

bool ValidateFdExact(const EncodedTable& table,
                     const StrippedPartition& context_partition, int a) {
  const auto& ranks = table.ranks(a);
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    const int32_t first = ranks[static_cast<size_t>(cls[0])];
    for (size_t i = 1; i < cls.size(); ++i) {
      if (ranks[static_cast<size_t>(cls[i])] != first) return false;
    }
  }
  return true;
}

ValidationOutcome ValidateAfdG1(const EncodedTable& table,
                                const StrippedPartition& context_partition,
                                int a, double max_g1_error,
                                int64_t table_rows,
                                const ValidatorOptions& options,
                                ValidatorScratch* scratch) {
  const auto& ranks = table.ranks(a);
  const double denom = static_cast<double>(table_rows) *
                       static_cast<double>(table_rows);
  // Largest violating-pair count still within budget; FP round-off is
  // guarded the same way MaxRemovals guards the removal budget.
  int64_t max_violations =
      table_rows == 0 ? 0 : static_cast<int64_t>(max_g1_error * denom);
  while (max_violations > 0 &&
         static_cast<double>(max_violations) > max_g1_error * denom) {
    --max_violations;
  }

  ValidationOutcome out;
  ValidatorScratch local;
  ValidatorScratch& s = scratch == nullptr ? local : *scratch;
  std::vector<int32_t>& freq = s.value_counts(table.column(a).cardinality);
  int64_t violations = 0;
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    int32_t best = 0;
    // Σ_v cnt_v² incrementally: adding the f-th copy of a value adds
    // f² − (f−1)² = 2f − 1 to the sum of squares.
    int64_t sum_squares = 0;
    for (int32_t row : cls) {
      const int32_t f =
          ++freq[static_cast<size_t>(ranks[static_cast<size_t>(row)])];
      sum_squares += 2 * static_cast<int64_t>(f) - 1;
      best = std::max(best, f);
    }
    const int64_t size = static_cast<int64_t>(cls.size());
    violations += size * size - sum_squares;
    out.removal_size += size - best;
    if (options.collect_removal_set) {
      int32_t keep_rank = -1;
      for (int32_t row : cls) {
        if (freq[static_cast<size_t>(ranks[static_cast<size_t>(row)])] ==
            best) {
          keep_rank = ranks[static_cast<size_t>(row)];
          break;
        }
      }
      for (int32_t row : cls) {
        if (ranks[static_cast<size_t>(row)] != keep_rank) {
          out.removal_rows.push_back(row);
        }
      }
    }
    for (int32_t row : cls) {
      freq[static_cast<size_t>(ranks[static_cast<size_t>(row)])] = 0;
    }
    if (options.early_exit && violations > max_violations) {
      out.valid = false;
      out.early_exit = true;
      out.approx_factor = static_cast<double>(violations) / denom;
      return out;
    }
  }
  out.valid = violations <= max_violations;
  out.approx_factor =
      table_rows == 0 ? 0.0 : static_cast<double>(violations) / denom;
  return out;
}

}  // namespace aod
