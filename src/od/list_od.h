// List-based order dependencies X -> Y (paper Sec. 2.1/2.2).
//
// The natural SQL-flavoured representation where attribute order matters
// (as in ORDER BY). FASTOD's insight, reused here, is the polynomial
// mapping of a list-based OD into an equivalent set of canonical OFDs and
// OCs (paper Example 2.13), which libaod's discovery framework operates
// on. This module provides the list-based type and that mapping.
#ifndef AOD_OD_LIST_OD_H_
#define AOD_OD_LIST_OD_H_

#include <string>
#include <vector>

#include "data/encoder.h"
#include "od/canonical_od.h"

namespace aod {

/// A list-based OD `lhs -> rhs` ("lhs orders rhs", Def. 2.2) or, when
/// interpreted by the OC functions, the order compatibility `lhs ~ rhs`
/// (Def. 2.3).
struct ListOd {
  std::vector<int> lhs;
  std::vector<int> rhs;

  /// "[pos, sal] -> [pos, exp]".
  std::string ToString(const EncodedTable& table) const;
  std::string ToString() const;
};

/// The canonical decomposition of a list-based OD.
struct CanonicalOdSet {
  /// "In the context of set(X), every attribute of Y is a constant":
  /// set(lhs): [] -> A for each A in rhs.
  std::vector<CanonicalOfd> ofds;
  /// "In the context of every prefix pair, the trailing attributes are
  /// order compatible": {lhs[0..i), rhs[0..j)}: lhs[i] ~ rhs[j].
  std::vector<CanonicalOc> ocs;
};

/// Maps X -> Y into the equivalent set of canonical ODs (paper Sec. 2.2).
/// The mapping is literal: trivially-true members (e.g. A ~ A, or an OFD
/// whose target already appears in the context) are kept, matching the
/// paper's Example 2.13; callers that want only the informative members
/// can filter with IsTrivial().
CanonicalOdSet MapListOdToCanonical(const ListOd& od);

/// A ~ A, or either side already inside the context (hence constant per
/// class and trivially order compatible).
bool IsTrivial(const CanonicalOc& oc);
/// Target attribute already inside the context.
bool IsTrivial(const CanonicalOfd& ofd);

}  // namespace aod

#endif  // AOD_OD_LIST_OD_H_
