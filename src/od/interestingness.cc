#include "od/interestingness.h"

#include <cmath>

namespace aod {

double InterestingnessScore(const StrippedPartition& context_partition,
                            int context_size, int64_t table_rows) {
  if (table_rows <= 0) return 0.0;
  // Coverage: fraction of tuples on which the dependency says anything at
  // all (tuples in non-singleton context classes). The empty context
  // covers every tuple by construction.
  double coverage =
      context_size == 0
          ? 1.0
          : static_cast<double>(context_partition.rows_covered()) /
                static_cast<double>(table_rows);
  return coverage / std::exp2(static_cast<double>(context_size));
}

}  // namespace aod
