// Exact validation of canonical OC candidates.
#ifndef AOD_OD_OC_VALIDATOR_H_
#define AOD_OD_OC_VALIDATOR_H_

#include <cstdint>

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/validator_scratch.h"
#include "partition/stripped_partition.h"

namespace aod {

/// True iff the OC `context_partition`: a ~ b holds exactly, i.e. no two
/// tuples within any equivalence class of the context form a swap
/// (paper Def. 2.5). Sorts each class by [A ASC, B ASC] and scans the
/// B-projection for a descent; exits at the first swap found. Classes are
/// visited largest-first: a swap needs two tuples, so the biggest class is
/// the likeliest witness and the early exit fires sooner on invalid
/// candidates (the boolean is an AND over classes, so order cannot change
/// the result).
/// With `opposite` the bidirectional polarity a asc ~ b desc is checked
/// (Szlichta et al. [10]). `scratch` (optional) makes the call
/// allocation-free.
bool ValidateOcExact(const EncodedTable& table,
                     const StrippedPartition& context_partition, int a, int b,
                     bool opposite = false, ValidatorScratch* scratch = nullptr);

/// Number of swapped tuple pairs w.r.t. the OC (0 iff the OC holds).
/// O(m log m) per class via merge-sort inversion counting — the quantity
/// Algorithm 1 calls `countInversions`. Exposed for stats and tests.
int64_t CountOcSwaps(const EncodedTable& table,
                     const StrippedPartition& context_partition, int a, int b);

}  // namespace aod

#endif  // AOD_OD_OC_VALIDATOR_H_
