// The set-based attribute lattice of the FASTOD framework (paper Sec. 3.1).
//
// Levels hold nodes keyed by attribute set. Each node carries the two
// candidate sets of FASTOD [9]:
//   - cc (C_c+): attributes still viable as OFD targets. TANE invariant:
//     A ∈ C_c+(X) iff for no B ∈ X does X\{A,B}: [] -> B hold — i.e. no
//     known constancy makes a dependency through X redundant.
//   - cs (C_s+): unordered attribute pairs {A,B} ⊆ X still viable as OC
//     candidates with context X\{A,B}.
// Nodes whose candidate sets empty out are deleted, which prunes every
// superset (next-level generation requires all subsets to survive). This
// is the mechanism behind the paper's Exp-5 observation that *approximate*
// discovery can be faster than exact discovery: AODs validate earlier
// (lower levels), so deletion cascades sooner.
#ifndef AOD_OD_LATTICE_H_
#define AOD_OD_LATTICE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "partition/attribute_set.h"

namespace aod {

/// An unordered attribute pair {a, b} with a < b, plus the OC polarity
/// class it is a candidate for (see CanonicalOc::opposite). Polarity is
/// symmetric in a and b, so the normalized a < b form loses nothing.
struct AttributePair {
  int a = -1;
  int b = -1;
  bool opposite = false;

  static AttributePair Of(int x, int y, bool opp = false) {
    return x < y ? AttributePair{x, y, opp} : AttributePair{y, x, opp};
  }
  bool operator==(const AttributePair& o) const {
    return a == o.a && b == o.b && opposite == o.opposite;
  }
  bool operator<(const AttributePair& o) const {
    if (a != o.a) return a < o.a;
    if (b != o.b) return b < o.b;
    return opposite < o.opposite;
  }
};

/// One lattice node: the attribute set plus the candidate state of every
/// dependency-kind group that traverses it.
///
/// The multi-kind platform runs up to three independent prunings over the
/// *same* level-wise traversal:
///   - the OD group (OC + OFD candidates, the original cc/cs machinery),
///   - the FD group (TANE C+ for plain FDs),
///   - the AFD group (the same TANE rule under the g1 threshold).
/// Each group keeps its own candidate sets and its own liveness flag; a
/// node stays in the level while ANY enabled group is alive, and each
/// group generates candidates at a node only when every subset node is
/// alive *for that group*. That reproduces each kind's standalone lattice
/// exactly — enabling FD/AFD discovery can never add or remove an OC/OFD
/// result, and vice versa.
struct LatticeNode {
  AttributeSet set;
  /// C_c+(X): OFD target candidates (attributes of R, not only of X).
  AttributeSet cc;
  /// C_s+(X): surviving OC candidate pairs, sorted ascending.
  std::vector<AttributePair> cs;
  /// Attributes A in X for which the OFD X\{A}: [] -> A was validated at
  /// this node (consumed by the next level's trivial-OC pruning).
  AttributeSet constant_here;
  /// TANE C+(X) of the exact-FD group: targets A still viable for a
  /// minimal FD through X.
  AttributeSet cc_fd;
  /// TANE C+(X) of the AFD group (g1 is monotone in the LHS, so the same
  /// minimality rule is sound).
  AttributeSet cc_afd;
  /// Per-group liveness, written by the driver's merge and read by the
  /// next level's planning. Defaults keep single-kind runs trivially
  /// correct for the virtual root node, which is never merged.
  bool od_alive = true;
  bool fd_alive = true;
  bool afd_alive = true;
};

/// One level of the lattice: nodes of equal set size.
class LatticeLevel {
 public:
  using NodeMap =
      std::unordered_map<AttributeSet, LatticeNode, AttributeSetHash>;

  explicit LatticeLevel(int level) : level_(level) {}

  int level() const { return level_; }
  NodeMap& nodes() { return nodes_; }
  const NodeMap& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }
  int64_t size() const { return static_cast<int64_t>(nodes_.size()); }

  LatticeNode* Find(AttributeSet set);
  const LatticeNode* Find(AttributeSet set) const;
  void Insert(LatticeNode node);
  void Erase(AttributeSet set);

  /// Builds level 1: one node per attribute, cc = R (TANE's C+(∅) = R
  /// intersected over the empty set of subsets).
  static LatticeLevel MakeFirstLevel(int num_attributes);

  /// TANE's GENERATE_NEXT_LEVEL via prefix blocks: joins pairs of
  /// surviving nodes sharing their first (level-1) attributes and keeps a
  /// candidate only if all its subsets of the current size survive.
  LatticeLevel GenerateNext() const;

 private:
  int level_;
  NodeMap nodes_;
};

}  // namespace aod

#endif  // AOD_OD_LATTICE_H_
