#include "od/oc_validator.h"

#include <algorithm>

#include "algo/inversions.h"

namespace aod {
namespace {

/// Sorts the rows of `cls` by (rank_a ASC, sign*rank_b ASC) into `rows`
/// and writes the sign-adjusted B-projection of the sorted order into
/// `projection`. sign = -1 checks the bidirectional polarity
/// a asc ~ b desc.
void SortedBProjection(const std::vector<int32_t>& ranks_a,
                       const std::vector<int32_t>& ranks_b,
                       StrippedPartition::ClassSpan cls, int32_t sign,
                       std::vector<int32_t>& rows,
                       std::vector<int32_t>& projection) {
  rows.assign(cls.begin(), cls.end());
  std::sort(rows.begin(), rows.end(), [&](int32_t s, int32_t t) {
    int32_t sa = ranks_a[static_cast<size_t>(s)];
    int32_t ta = ranks_a[static_cast<size_t>(t)];
    if (sa != ta) return sa < ta;
    return sign * ranks_b[static_cast<size_t>(s)] <
           sign * ranks_b[static_cast<size_t>(t)];
  });
  projection.resize(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    projection[i] = sign * ranks_b[static_cast<size_t>(rows[i])];
  }
}

}  // namespace

bool ValidateOcExact(const EncodedTable& table,
                     const StrippedPartition& context_partition, int a,
                     int b, bool opposite, ValidatorScratch* scratch) {
  const auto& ranks_a = table.ranks(a);
  const auto& ranks_b = table.ranks(b);
  const int32_t sign = opposite ? -1 : 1;
  ValidatorScratch local;
  ValidatorScratch& s = scratch == nullptr ? local : *scratch;

  // Largest class first (ties by index, so the order is deterministic):
  // the class most likely to contain a swap is checked before the tail of
  // small ones. Counting sort keyed by class size — O(nc + max_size),
  // which is dominated by the per-class sorting below (max_size <=
  // rows_covered), where a comparison sort of the indices would dominate
  // on singleton-heavy partitions.
  const int64_t nc = context_partition.num_classes();
  std::vector<int32_t>& order = s.order();
  order.resize(static_cast<size_t>(nc));
  int32_t max_size = 0;
  for (int64_t i = 0; i < nc; ++i) {
    max_size = std::max(max_size,
                        static_cast<int32_t>(context_partition.cls(i).size()));
  }
  std::vector<int32_t>& size_count = s.value_counts(max_size + 1);
  for (int64_t i = 0; i < nc; ++i) {
    ++size_count[context_partition.cls(i).size()];
  }
  int32_t cursor = 0;
  for (int32_t sz = max_size; sz >= 2; --sz) {
    int32_t c = size_count[static_cast<size_t>(sz)];
    size_count[static_cast<size_t>(sz)] = cursor;
    cursor += c;
  }
  for (int64_t i = 0; i < nc; ++i) {
    // Ascending i with cursor placement keeps equal-size classes in index
    // order (the deterministic tie-break).
    order[static_cast<size_t>(
        size_count[context_partition.cls(i).size()]++)] =
        static_cast<int32_t>(i);
  }
  for (int32_t sz = 2; sz <= max_size; ++sz) {
    size_count[static_cast<size_t>(sz)] = 0;
  }

  for (int32_t ci : order) {
    SortedBProjection(ranks_a, ranks_b, context_partition.cls(ci), sign,
                      s.rows(), s.projection());
    const std::vector<int32_t>& projection = s.projection();
    // With ties broken by B, the OC holds on this class iff the
    // B-projection is non-decreasing (any descent certifies a swap).
    for (size_t i = 1; i < projection.size(); ++i) {
      if (projection[i] < projection[i - 1]) return false;
    }
  }
  return true;
}

int64_t CountOcSwaps(const EncodedTable& table,
                     const StrippedPartition& context_partition, int a,
                     int b) {
  const auto& ranks_a = table.ranks(a);
  const auto& ranks_b = table.ranks(b);
  int64_t swaps = 0;
  std::vector<int32_t> rows;
  std::vector<int32_t> projection;
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    SortedBProjection(ranks_a, ranks_b, cls, 1, rows, projection);
    swaps += CountInversions(projection);
  }
  return swaps;
}

}  // namespace aod
