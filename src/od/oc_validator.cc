#include "od/oc_validator.h"

#include <algorithm>

#include "algo/inversions.h"

namespace aod {
namespace {

/// Sorts the rows of `cls` by (rank_a ASC, sign*rank_b ASC) and returns
/// the sign-adjusted B-projection of the sorted order. sign = -1 checks
/// the bidirectional polarity a asc ~ b desc.
std::vector<int32_t> SortedBProjection(const std::vector<int32_t>& ranks_a,
                                       const std::vector<int32_t>& ranks_b,
                                       const std::vector<int32_t>& cls,
                                       int32_t sign) {
  std::vector<int32_t> rows = cls;
  std::sort(rows.begin(), rows.end(), [&](int32_t s, int32_t t) {
    int32_t sa = ranks_a[static_cast<size_t>(s)];
    int32_t ta = ranks_a[static_cast<size_t>(t)];
    if (sa != ta) return sa < ta;
    return sign * ranks_b[static_cast<size_t>(s)] <
           sign * ranks_b[static_cast<size_t>(t)];
  });
  std::vector<int32_t> projection(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    projection[i] = sign * ranks_b[static_cast<size_t>(rows[i])];
  }
  return projection;
}

}  // namespace

bool ValidateOcExact(const EncodedTable& table,
                     const StrippedPartition& context_partition, int a,
                     int b, bool opposite) {
  const auto& ranks_a = table.ranks(a);
  const auto& ranks_b = table.ranks(b);
  const int32_t sign = opposite ? -1 : 1;
  for (const auto& cls : context_partition.classes()) {
    std::vector<int32_t> projection =
        SortedBProjection(ranks_a, ranks_b, cls, sign);
    // With ties broken by B, the OC holds on this class iff the
    // B-projection is non-decreasing (any descent certifies a swap).
    for (size_t i = 1; i < projection.size(); ++i) {
      if (projection[i] < projection[i - 1]) return false;
    }
  }
  return true;
}

int64_t CountOcSwaps(const EncodedTable& table,
                     const StrippedPartition& context_partition, int a,
                     int b) {
  const auto& ranks_a = table.ranks(a);
  const auto& ranks_b = table.ranks(b);
  int64_t swaps = 0;
  for (const auto& cls : context_partition.classes()) {
    swaps += CountInversions(SortedBProjection(ranks_a, ranks_b, cls, 1));
  }
  return swaps;
}

}  // namespace aod
