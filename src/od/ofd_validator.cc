#include "od/ofd_validator.h"

#include <algorithm>

namespace aod {

bool ValidateOfdExact(const EncodedTable& table,
                      const StrippedPartition& context_partition, int a) {
  const auto& ranks = table.ranks(a);
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    int32_t first = ranks[static_cast<size_t>(cls[0])];
    for (size_t i = 1; i < cls.size(); ++i) {
      if (ranks[static_cast<size_t>(cls[i])] != first) return false;
    }
  }
  return true;
}

ValidationOutcome ValidateOfdApprox(const EncodedTable& table,
                                    const StrippedPartition& context_partition,
                                    int a, double epsilon, int64_t table_rows,
                                    const ValidatorOptions& options,
                                    ValidatorScratch* scratch) {
  const auto& ranks = table.ranks(a);
  const int64_t max_removals = MaxRemovals(epsilon, table_rows);

  ValidationOutcome out;
  ValidatorScratch local;
  ValidatorScratch& s = scratch == nullptr ? local : *scratch;
  // Dense per-rank counters: ranks are already dense in [0, cardinality),
  // so frequency counting is an array index, not a hash probe. Touched
  // slots are re-zeroed per class, keeping the reset O(class size).
  std::vector<int32_t>& freq = s.value_counts(table.column(a).cardinality);
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    int32_t best = 0;
    for (int32_t row : cls) {
      int32_t f = ++freq[static_cast<size_t>(ranks[static_cast<size_t>(row)])];
      best = std::max(best, f);
    }
    out.removal_size += static_cast<int64_t>(cls.size()) - best;
    if (options.collect_removal_set) {
      // Keep the (first) most frequent value; remove everything else.
      int32_t keep_rank = -1;
      for (int32_t row : cls) {
        if (freq[static_cast<size_t>(ranks[static_cast<size_t>(row)])] ==
            best) {
          keep_rank = ranks[static_cast<size_t>(row)];
          break;
        }
      }
      for (int32_t row : cls) {
        if (ranks[static_cast<size_t>(row)] != keep_rank) {
          out.removal_rows.push_back(row);
        }
      }
    }
    for (int32_t row : cls) {
      freq[static_cast<size_t>(ranks[static_cast<size_t>(row)])] = 0;
    }
    if (options.early_exit && out.removal_size > max_removals) {
      out.valid = false;
      out.early_exit = true;
      out.approx_factor = static_cast<double>(out.removal_size) /
                          static_cast<double>(table_rows);
      return out;
    }
  }
  out.valid = out.removal_size <= max_removals;
  out.approx_factor = table_rows == 0
                          ? 0.0
                          : static_cast<double>(out.removal_size) /
                                static_cast<double>(table_rows);
  return out;
}

}  // namespace aod
