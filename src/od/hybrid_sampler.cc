#include "od/hybrid_sampler.h"

#include <algorithm>

#include "algo/lnds.h"
#include "common/macros.h"
#include "gen/random.h"
#include "od/aoc_lis_validator.h"

namespace aod {

AocSampler::AocSampler(const EncodedTable* table, SamplerConfig config)
    : table_(table), config_(config) {
  AOD_CHECK(table != nullptr);
  const int64_t n = table_->num_rows();
  in_sample_.assign(static_cast<size_t>(n), 0);
  if (n == 0) return;
  double rate = std::min(
      1.0, static_cast<double>(config_.sample_size) / static_cast<double>(n));
  Rng rng(config_.seed);
  for (int64_t r = 0; r < n; ++r) {
    if (rng.Bernoulli(rate)) {
      in_sample_[static_cast<size_t>(r)] = 1;
      ++sampled_rows_;
    }
  }
}

double AocSampler::EstimateFactor(const StrippedPartition& context_partition,
                                  int a, int b, bool opposite,
                                  ValidatorScratch* scratch) const {
  if (sampled_rows_ == 0) return 0.0;
  const auto& ranks_a = table_->ranks(a);
  const auto& ranks_b = table_->ranks(b);
  const int32_t sign = opposite ? -1 : 1;

  int64_t removal = 0;
  ValidatorScratch local;
  ValidatorScratch& s = scratch == nullptr ? local : *scratch;
  std::vector<int32_t>& rows = s.rows();
  std::vector<int32_t>& projection = s.projection();
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    rows.clear();
    for (int32_t r : cls) {
      if (in_sample_[static_cast<size_t>(r)]) rows.push_back(r);
    }
    if (rows.size() < 2) continue;
    std::sort(rows.begin(), rows.end(), [&](int32_t s, int32_t t) {
      int32_t sa = ranks_a[static_cast<size_t>(s)];
      int32_t ta = ranks_a[static_cast<size_t>(t)];
      if (sa != ta) return sa < ta;
      return sign * ranks_b[static_cast<size_t>(s)] <
             sign * ranks_b[static_cast<size_t>(t)];
    });
    projection.resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      projection[i] = sign * ranks_b[static_cast<size_t>(rows[i])];
    }
    removal += static_cast<int64_t>(projection.size()) -
               LndsLength(projection);
  }
  return static_cast<double>(removal) / static_cast<double>(sampled_rows_);
}

ValidationOutcome AocSampler::Validate(
    const StrippedPartition& context_partition, int a, int b, double epsilon,
    const ValidatorOptions& options, ValidatorScratch* scratch) {
  // The sample factor underestimates e(phi) in expectation, so exceeding
  // the inflated threshold is strong evidence of invalidity.
  double estimate = EstimateFactor(context_partition, a, b,
                                   options.opposite_polarity, scratch);
  if (estimate > (1.0 + config_.reject_margin) * epsilon) {
    ++fast_rejections_;
    ValidationOutcome out;
    out.valid = false;
    out.early_exit = true;
    out.approx_factor = estimate;
    out.removal_size = static_cast<int64_t>(
        estimate * static_cast<double>(table_->num_rows()));
    return out;
  }
  ++full_validations_;
  return ValidateAocOptimal(*table_, context_partition, a, b, epsilon,
                            table_->num_rows(), options, scratch);
}

}  // namespace aod
