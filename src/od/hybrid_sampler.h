// Hybrid sampling-based AOC validation.
//
// The paper's future-work section proposes "new approaches for
// discovering approximate OCs, such as hybrid sampling, as done in [6]
// (Papenbrock & Naumann, SIGMOD'16) for FDs". This module implements the
// natural transfer of that idea to AOC validation:
//
//   For a uniform row sample S and any removal set s of the full table,
//   s ∩ S is a removal set of the sample (a subset of a swap-free set is
//   swap-free), so the *minimal* sample removal factor statistically
//   UNDER-estimates the true approximation factor e(phi). Hence a sample
//   factor far above the threshold is a cheap, high-confidence rejection,
//   while anything near or below the threshold falls through to the
//   exact LIS validator (Alg. 2).
//
// The fast-reject path is heuristic: with adversarial data a candidate
// can pass the sample yet fail the full check (harmless — full
// validation still runs) or, with probability decaying exponentially in
// the sample size, be rejected although it truly holds. The
// `reject_margin` knob trades that false-rejection risk against the
// number of full validations saved; see bench/ablation_extensions.
#ifndef AOD_OD_HYBRID_SAMPLER_H_
#define AOD_OD_HYBRID_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/validator_scratch.h"
#include "partition/stripped_partition.h"

namespace aod {

struct SamplerConfig {
  /// Target number of sampled rows (the realized Bernoulli sample varies
  /// by a few percent).
  int64_t sample_size = 2000;
  /// Fast-reject when the sample factor exceeds (1 + reject_margin) *
  /// epsilon. Larger margins are safer but reject less.
  double reject_margin = 0.5;
  uint64_t seed = 7;
};

/// Validates AOC candidates with a sampling fast-path in front of the
/// optimal validator. One sampler instance fixes one row sample, so all
/// candidates of a discovery run see consistent estimates.
class AocSampler {
 public:
  AocSampler(const EncodedTable* table, SamplerConfig config);

  /// Approximation-factor estimate from the sample alone (an
  /// underestimate in expectation). O(|S| log |S|). `scratch` (optional)
  /// makes the call allocation-free; it is borrowed, not retained.
  double EstimateFactor(const StrippedPartition& context_partition, int a,
                        int b, bool opposite = false,
                        ValidatorScratch* scratch = nullptr) const;

  /// Hybrid validation: fast-reject via the sample when possible,
  /// otherwise exact LIS validation. The outcome of the slow path is
  /// exact; fast rejections return `valid = false` with the scaled
  /// sample estimate as `approx_factor` and `early_exit` set.
  /// Thread-safe (counters are atomic; the sample is immutable; `scratch`
  /// is caller-owned), so one sampler can serve all workers of a parallel
  /// discovery run.
  ValidationOutcome Validate(const StrippedPartition& context_partition,
                             int a, int b, double epsilon,
                             const ValidatorOptions& options = {},
                             ValidatorScratch* scratch = nullptr);

  int64_t fast_rejections() const { return fast_rejections_.load(); }
  int64_t full_validations() const { return full_validations_.load(); }
  int64_t sampled_rows() const { return sampled_rows_; }

 private:
  const EncodedTable* table_;
  SamplerConfig config_;
  /// in_sample_[row] = 1 iff the row belongs to the fixed sample.
  std::vector<uint8_t> in_sample_;
  int64_t sampled_rows_ = 0;
  std::atomic<int64_t> fast_rejections_{0};
  std::atomic<int64_t> full_validations_{0};
};

}  // namespace aod

#endif  // AOD_OD_HYBRID_SAMPLER_H_
