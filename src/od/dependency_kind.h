// The dependency-kind vocabulary of the multi-dependency platform.
//
// The lattice driver, partition cache, shard wire and serving layer are
// generic machinery; what varies per dependency *kind* is only the
// validation predicate, its error measure and its pruning rule. This
// module names the kinds and gives DiscoveryOptions (and both wire
// formats) a compact, validated set representation.
//
// Kinds mined by the level-wise lattice driver:
//   kOc   — order compatibility X: A ~ B (the paper's AOC core; error =
//           removal fraction |s|/|r| against DiscoveryOptions::epsilon).
//   kOfd  — order functional dependency X: [] -> A, the OD split's
//           second half (same removal-fraction error as kOc).
//   kFd   — exact functional dependency X -> A: a refinement test on the
//           context partition (error is identically 0).
//   kAfd  — approximate FD under the Kivinen–Mannila g1 pair error,
//           thresholded by DiscoveryOptions::afd_error (the Desbordante
//           guide's AFD semantics; see SNIPPETS.md).
//
// List-based ODs are *assembled* from OC + OFD parts (od/od_assembly.h),
// not mined as lattice candidates, so they have no entry here: a
// DiscoveredDependency is always one of the four lattice kinds.
#ifndef AOD_OD_DEPENDENCY_KIND_H_
#define AOD_OD_DEPENDENCY_KIND_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace aod {

enum class DependencyKind : uint8_t {
  kOc = 0,
  kOfd = 1,
  kFd = 2,
  kAfd = 3,
};

/// Number of kinds (= one past the largest enum value); wire decoders
/// reject anything >= this.
inline constexpr int kNumDependencyKinds = 4;

const char* DependencyKindToString(DependencyKind kind);

/// A set of dependency kinds as a bitmask (bit i = kind with value i).
/// The default-constructed set is empty; DiscoveryOptions defaults to
/// DependencyKindSet::OdDefault() — {oc, ofd} — which reproduces the
/// pre-platform behavior exactly.
class DependencyKindSet {
 public:
  constexpr DependencyKindSet() = default;
  constexpr explicit DependencyKindSet(uint32_t bits) : bits_(bits) {}

  static constexpr DependencyKindSet OdDefault() {
    return DependencyKindSet((1u << static_cast<int>(DependencyKind::kOc)) |
                             (1u << static_cast<int>(DependencyKind::kOfd)));
  }
  static constexpr DependencyKindSet All() {
    return DependencyKindSet((1u << kNumDependencyKinds) - 1);
  }

  constexpr uint32_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr bool Contains(DependencyKind kind) const {
    return (bits_ & (1u << static_cast<int>(kind))) != 0;
  }
  constexpr DependencyKindSet With(DependencyKind kind) const {
    return DependencyKindSet(bits_ | (1u << static_cast<int>(kind)));
  }
  constexpr bool operator==(const DependencyKindSet& o) const {
    return bits_ == o.bits_;
  }

  /// True iff every set bit names a known kind — what wire decoders
  /// check before trusting the mask.
  constexpr bool IsValid() const {
    return (bits_ & ~All().bits()) == 0;
  }

  /// "oc,ofd" style round-trip form, kinds in enum order.
  std::string ToString() const;
  /// Parses a comma-separated kind list ("oc,ofd,fd,afd"); rejects
  /// unknown names, empty components and an empty result.
  static Result<DependencyKindSet> Parse(const std::string& spec);

 private:
  uint32_t bits_ = 0;
};

}  // namespace aod

#endif  // AOD_OD_DEPENDENCY_KIND_H_
