#include "od/repair.h"

#include <algorithm>

#include "algo/lnds.h"
#include "common/macros.h"

namespace aod {

std::string CellRepair::ToString(const EncodedTable& table) const {
  std::string out = "row " + std::to_string(row) + ": " +
                    table.name(attribute) + " = " + current.ToString() +
                    " should lie in ";
  out += low.is_null() ? "(-inf" : "[" + low.ToString();
  out += ", ";
  out += high.is_null() ? "+inf)" : high.ToString() + "]";
  return out;
}

std::string RepairPlan::ToString(const EncodedTable& table,
                                 size_t max_items) const {
  std::string out =
      "repairs for " + oc.ToString(table) + " (" +
      std::to_string(repairs.size()) + " suspect cells):\n";
  for (size_t i = 0; i < repairs.size() && i < max_items; ++i) {
    out += "  " + repairs[i].ToString(table) + "\n";
  }
  if (repairs.size() > max_items) {
    out += "  ... (" + std::to_string(repairs.size() - max_items) +
           " more)\n";
  }
  return out;
}

RepairPlan SuggestOcRepairs(const EncodedTable& table,
                            const StrippedPartition& context_partition,
                            const CanonicalOc& oc) {
  const auto& ranks_a = table.ranks(oc.a);
  const auto& ranks_b = table.ranks(oc.b);
  const EncodedColumn& col_b = table.column(oc.b);
  const int32_t sign = oc.opposite ? -1 : 1;

  RepairPlan plan;
  plan.oc = oc;
  std::vector<int32_t> rows;
  std::vector<int32_t> projection;
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    rows.assign(cls.begin(), cls.end());
    std::sort(rows.begin(), rows.end(), [&](int32_t s, int32_t t) {
      int32_t sa = ranks_a[static_cast<size_t>(s)];
      int32_t ta = ranks_a[static_cast<size_t>(t)];
      if (sa != ta) return sa < ta;
      return sign * ranks_b[static_cast<size_t>(s)] <
             sign * ranks_b[static_cast<size_t>(t)];
    });
    projection.resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      projection[i] = sign * ranks_b[static_cast<size_t>(rows[i])];
    }
    std::vector<int32_t> kept = LndsIndices(projection);
    // Walk removed positions; bracket each with the nearest kept
    // neighbours (kept is ascending).
    size_t k = 0;
    for (int32_t pos = 0; pos < static_cast<int32_t>(rows.size()); ++pos) {
      if (k < kept.size() && kept[k] == pos) {
        ++k;
        continue;
      }
      CellRepair repair;
      repair.row = rows[static_cast<size_t>(pos)];
      repair.attribute = oc.b;
      repair.current =
          col_b.Decode(ranks_b[static_cast<size_t>(repair.row)]);
      // Nearest kept neighbour below is kept[k-1], above is kept[k].
      int32_t low_rank = -1;
      int32_t high_rank = -1;
      if (k > 0) {
        low_rank = ranks_b[static_cast<size_t>(
            rows[static_cast<size_t>(kept[k - 1])])];
      }
      if (k < kept.size()) {
        high_rank = ranks_b[static_cast<size_t>(
            rows[static_cast<size_t>(kept[k])])];
      }
      if (oc.opposite) std::swap(low_rank, high_rank);
      repair.low = low_rank < 0 ? Value::Null() : col_b.Decode(low_rank);
      repair.high = high_rank < 0 ? Value::Null() : col_b.Decode(high_rank);
      plan.repairs.push_back(std::move(repair));
    }
  }
  return plan;
}

}  // namespace aod
