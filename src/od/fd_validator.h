// Exact and approximate functional-dependency validators.
//
// Both are degenerate cases of the stripped-partition machinery that
// already powers OD discovery (the Desbordante FD guide in SNIPPETS.md):
// X -> A holds exactly iff every equivalence class of Π_X is constant in
// A — a refinement test that never materializes Π_{X∪{A}} — and the
// approximate form replaces "constant" with an error budget.
//
// The AFD error is Kivinen–Mannila's g1, the pair-counting measure the
// Desbordante guide thresholds on:
//
//   g1(X -> A) = |{(t,u) : t[X]=u[X] ∧ t[A]≠u[A]}| / |r|²
//
// Per context class c the violating ordered pairs are |c|² − Σ_v cnt_v²
// (cnt_v = rows of c with A-rank v). Rows in singleton classes — exactly
// the rows a stripped partition drops — contribute nothing, so iterating
// the stripped classes is not an approximation. The counts are int64:
// |c|² stays below 2^63 for any |r| < 3e9 rows, far beyond the int32 row
// ids the CSR layout can address.
//
// The verdict also carries a removal count (the g3-style "rows to delete
// until the FD holds", Σ_c (|c| − max_v cnt_v)) computed in the same
// frequency pass — it rides along for observability and removal-set
// collection, while validity is decided by g1 alone.
#ifndef AOD_OD_FD_VALIDATOR_H_
#define AOD_OD_FD_VALIDATOR_H_

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/validator_scratch.h"
#include "partition/stripped_partition.h"

namespace aod {

/// Exact FD X -> A over the context partition Π_X: true iff every class
/// is constant in A's ranks. Mechanically identical to the exact OFD
/// test (an OFD X: [] -> A *is* the FD X -> A); kept as its own entry
/// point so the kinds stay independently pluggable.
bool ValidateFdExact(const EncodedTable& table,
                     const StrippedPartition& context_partition, int a);

/// Approximate FD under g1. Valid iff g1 <= max_g1_error; the outcome's
/// approx_factor carries the exact g1 value (0 when table_rows == 0).
/// Early exit: counting stops as soon as the violating-pair count
/// exceeds floor(max_g1_error * |r|²) — the verdict is then invalid with
/// early_exit set and approx_factor a lower bound, mirroring the OFD/OC
/// validators' early-exit contract. removal_rows is filled (rows outside
/// each class's most frequent A-value) only when
/// options.collect_removal_set is set, which also disables early exit
/// upstream.
ValidationOutcome ValidateAfdG1(const EncodedTable& table,
                                const StrippedPartition& context_partition,
                                int a, double max_g1_error,
                                int64_t table_rows,
                                const ValidatorOptions& options,
                                ValidatorScratch* scratch = nullptr);

}  // namespace aod

#endif  // AOD_OD_FD_VALIDATOR_H_
