// Canonical set-based order dependencies (paper Sec. 2.2).
//
// Following FASTOD [9], list-based ODs are represented by a logically
// equivalent collection of two canonical forms over attribute *sets*:
//   - canonical OC   "X: A ~ B"     — A and B are order compatible within
//                                     each equivalence class of context X;
//   - OFD            "X: [] -> A"   — A is constant within each class of X.
// OD == OC + OFD: "X: A -> B" (A orders B in context X) is equivalent to
// the OC "X: A ~ B" plus the OFD "XA: [] -> B".
#ifndef AOD_OD_CANONICAL_OD_H_
#define AOD_OD_CANONICAL_OD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/encoder.h"
#include "partition/attribute_set.h"

namespace aod {

/// Canonical order compatibility X: A ~ B (paper Def. 2.10).
///
/// With `opposite` set, the OC is *bidirectional* in the sense of
/// Szlichta et al. [10]: A ascending is order compatible with B
/// *descending* (equivalently A desc with B asc — the flag only encodes
/// the polarity class, which is symmetric in A and B).
struct CanonicalOc {
  AttributeSet context;
  int a = -1;
  int b = -1;
  bool opposite = false;

  bool operator==(const CanonicalOc& o) const {
    return context == o.context && opposite == o.opposite &&
           ((a == o.a && b == o.b) || (a == o.b && b == o.a));
  }

  /// "{pos}: sal ~ bonus", or "{pos}: sal ~ desc(bonus)" when opposite.
  std::string ToString(const EncodedTable& table) const;
  std::string ToString() const;
};

/// Order functional dependency X: [] -> A (paper Def. 2.11).
struct CanonicalOfd {
  AttributeSet context;
  int a = -1;

  bool operator==(const CanonicalOfd& o) const {
    return context == o.context && a == o.a;
  }

  /// "{pos, sal}: [] -> bonus".
  std::string ToString(const EncodedTable& table) const;
  std::string ToString() const;
};

/// Outcome of validating a candidate dependency against a threshold.
struct ValidationOutcome {
  /// e(phi) <= epsilon, i.e. the candidate holds approximately.
  bool valid = false;
  /// |s| for the computed removal set s. Exact for the LIS validator and
  /// for completed iterative runs; a lower bound when `early_exit` is set
  /// (the validator stopped as soon as the threshold was exceeded).
  int64_t removal_size = 0;
  /// removal_size / |r| (the paper's approximation factor e(phi); for the
  /// iterative validator this may overestimate the true factor).
  double approx_factor = 0.0;
  /// True when validation stopped early at the threshold.
  bool early_exit = false;
  /// Row ids of the removal set; filled only when requested via options.
  std::vector<int32_t> removal_rows;
};

/// Shared options for the approximate validators.
struct ValidatorOptions {
  /// Materialize ValidationOutcome::removal_rows. Off in discovery runs;
  /// on in the data-cleaning example and Exp-4.
  bool collect_removal_set = false;
  /// Stop as soon as the removal set provably exceeds the threshold.
  /// Disable to measure true removal-set sizes of invalid candidates.
  bool early_exit = true;
  /// Validate the bidirectional polarity A asc ~ B desc instead of
  /// A asc ~ B asc (Szlichta et al. [10]). Implemented by reversing B's
  /// rank order, which maps the problem back to the unidirectional case.
  bool opposite_polarity = false;
};

/// floor(epsilon * num_rows) with guard against FP round-off: the largest
/// removal size that still satisfies e(phi) <= epsilon.
int64_t MaxRemovals(double epsilon, int64_t num_rows);

}  // namespace aod

#endif  // AOD_OD_CANONICAL_OD_H_
