// Repair suggestions from approximate order dependencies.
//
// The paper's system framework (Fig. 1) routes verified AODs into "error
// repair / outlier detection", citing Qiu et al. [7] ("Repairing data
// violations with order dependencies", DASFAA'18). This module closes
// that loop: given a (verified) OC, the tuples outside a longest
// non-decreasing subsequence are the minimal set of suspects, and for
// each suspect the B-values of its nearest *kept* neighbours bound the
// interval any repaired value must fall into to restore the order.
#ifndef AOD_OD_REPAIR_H_
#define AOD_OD_REPAIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "partition/stripped_partition.h"

namespace aod {

/// One flagged cell with its admissible repair interval.
struct CellRepair {
  int32_t row = -1;
  /// The right-hand attribute whose value is out of order.
  int attribute = -1;
  Value current;
  /// Closed admissible interval [low, high]; a null endpoint means the
  /// interval is unbounded on that side.
  Value low;
  Value high;

  /// "row 4: tax = 12 should lie in [1.5, 1.8]".
  std::string ToString(const EncodedTable& table) const;
};

/// A batch of suggestions for one dependency.
struct RepairPlan {
  CanonicalOc oc;
  std::vector<CellRepair> repairs;

  std::string ToString(const EncodedTable& table,
                       size_t max_items = 20) const;
};

/// Computes the minimal suspect set of the OC `context_partition`: a ~ b
/// and an admissible repair interval for each suspect's B-value.
/// O(n log n), one LNDS pass per context class.
RepairPlan SuggestOcRepairs(const EncodedTable& table,
                            const StrippedPartition& context_partition,
                            const CanonicalOc& oc);

}  // namespace aod

#endif  // AOD_OD_REPAIR_H_
