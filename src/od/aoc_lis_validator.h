// The paper's Algorithm 2, `Approx-OC-optimal`: LIS-based AOC validation.
//
// Per equivalence class of the context, tuples are ordered by
// [A ASC, B ASC]; the tuples not on a longest non-decreasing subsequence
// (LNDS) of the B-projection form a removal set. Theorem 3.3 proves the
// set is a *minimal* removal set; Theorem 3.4 proves the O(n log n)
// runtime is optimal for AOC validation (via reduction from Fredman's
// LIS-DEC lower bound).
//
// Sec. 3.3 extension: breaking A-ties by B *DESC*ending instead forces the
// LNDS to also eliminate splits, which validates the canonical OD
// X: A -> B (== OC X: A ~ B plus OFD XA: [] -> B) in one pass.
#ifndef AOD_OD_AOC_LIS_VALIDATOR_H_
#define AOD_OD_AOC_LIS_VALIDATOR_H_

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/validator_scratch.h"
#include "partition/stripped_partition.h"

namespace aod {

/// Validates the AOC `context_partition`: a ~ b against `epsilon`.
/// The removal set is minimal (Thm. 3.3); `removal_size` is exact unless
/// `early_exit` fired. O(n log n) total. `scratch` (optional) removes the
/// per-call sort/projection allocations.
ValidationOutcome ValidateAocOptimal(const EncodedTable& table,
                                     const StrippedPartition& context_partition,
                                     int a, int b, double epsilon,
                                     int64_t table_rows,
                                     const ValidatorOptions& options = {},
                                     ValidatorScratch* scratch = nullptr);

/// Validates the canonical AOD `context_partition`: a -> b (order *and*
/// constancy of b per a-group) via the descending-tie variant. The removal
/// set is minimal for the OD.
ValidationOutcome ValidateAodOptimal(const EncodedTable& table,
                                     const StrippedPartition& context_partition,
                                     int a, int b, double epsilon,
                                     int64_t table_rows,
                                     const ValidatorOptions& options = {},
                                     ValidatorScratch* scratch = nullptr);

}  // namespace aod

#endif  // AOD_OD_AOC_LIS_VALIDATOR_H_
