// The paper's Algorithm 1, `Approx-OC-iterative` (Szlichta et al. [9,10]).
//
// The prior state of the art that Algorithm 2 replaces: repeatedly remove
// the tuple participating in the most swaps until the class is swap-free
// or the threshold is crossed. Two documented weaknesses (paper Sec. 3.2):
//   - O(n log n + eps*n^2) runtime (quadratic in practice), and
//   - no minimality guarantee — the removal set can overestimate e(phi)
//     (paper Ex. 3.1 vs Ex. 3.2: 5/9 reported where the minimum is 4/9),
//     so true AOCs near the threshold can be missed, making discovery
//     incomplete.
// Reimplemented faithfully for the head-to-head experiments (Exp-3/Exp-4).
#ifndef AOD_OD_AOC_ITERATIVE_VALIDATOR_H_
#define AOD_OD_AOC_ITERATIVE_VALIDATOR_H_

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/validator_scratch.h"
#include "partition/stripped_partition.h"

namespace aod {

/// Validates the AOC `context_partition`: a ~ b against `epsilon` with the
/// greedy iterative strategy. With options.early_exit (the paper's Line
/// 14) the run aborts with "INVALID" as soon as more than eps*|r| tuples
/// have been removed; disable it to measure the full (possibly
/// overestimated) removal set, as in Exp-4. `scratch` (optional) removes
/// all per-class allocations, including the Fenwick trees of the swap
/// counter.
ValidationOutcome ValidateAocIterative(
    const EncodedTable& table, const StrippedPartition& context_partition,
    int a, int b, double epsilon, int64_t table_rows,
    const ValidatorOptions& options = {}, ValidatorScratch* scratch = nullptr);

}  // namespace aod

#endif  // AOD_OD_AOC_ITERATIVE_VALIDATOR_H_
