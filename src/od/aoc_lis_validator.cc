#include "od/aoc_lis_validator.h"

#include <algorithm>

#include "algo/lnds.h"

namespace aod {
namespace {

/// Shared implementation; `descending_ties` selects the OD variant.
ValidationOutcome ValidateLis(const EncodedTable& table,
                              const StrippedPartition& context_partition,
                              int a, int b, double epsilon,
                              int64_t table_rows,
                              const ValidatorOptions& options,
                              bool descending_ties,
                              ValidatorScratch* scratch) {
  const auto& ranks_a = table.ranks(a);
  const auto& ranks_b = table.ranks(b);
  const int64_t max_removals = MaxRemovals(epsilon, table_rows);
  // Bidirectional polarity (see ValidatorOptions): reversing B's rank
  // order reduces A asc ~ B desc to the unidirectional problem.
  const int32_t sign = options.opposite_polarity ? -1 : 1;

  ValidationOutcome out;
  ValidatorScratch local;
  ValidatorScratch& s = scratch == nullptr ? local : *scratch;
  std::vector<int32_t>& rows = s.rows();
  std::vector<int32_t>& projection = s.projection();
  for (StrippedPartition::ClassSpan cls : context_partition.classes()) {
    rows.assign(cls.begin(), cls.end());
    // Line 3 of Algorithm 2: order the class by [A ASC, B ASC]
    // (B DESC within A-ties for the OD variant).
    std::sort(rows.begin(), rows.end(), [&](int32_t s, int32_t t) {
      int32_t sa = ranks_a[static_cast<size_t>(s)];
      int32_t ta = ranks_a[static_cast<size_t>(t)];
      if (sa != ta) return sa < ta;
      int32_t sb = sign * ranks_b[static_cast<size_t>(s)];
      int32_t tb = sign * ranks_b[static_cast<size_t>(t)];
      return descending_ties ? sb > tb : sb < tb;
    });
    projection.resize(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      projection[i] = sign * ranks_b[static_cast<size_t>(rows[i])];
    }
    // Line 4: longest non-decreasing subsequence of the B-projection;
    // Line 5: the complement is the removal set for this class.
    if (options.collect_removal_set) {
      std::vector<int32_t> removed_positions = LndsComplement(projection);
      out.removal_size += static_cast<int64_t>(removed_positions.size());
      for (int32_t pos : removed_positions) {
        out.removal_rows.push_back(rows[static_cast<size_t>(pos)]);
      }
    } else {
      out.removal_size +=
          static_cast<int64_t>(projection.size()) - LndsLength(projection);
    }
    if (options.early_exit && out.removal_size > max_removals) {
      out.valid = false;
      out.early_exit = true;
      out.approx_factor = static_cast<double>(out.removal_size) /
                          static_cast<double>(table_rows);
      return out;
    }
  }
  out.valid = out.removal_size <= max_removals;
  out.approx_factor = table_rows == 0
                          ? 0.0
                          : static_cast<double>(out.removal_size) /
                                static_cast<double>(table_rows);
  return out;
}

}  // namespace

ValidationOutcome ValidateAocOptimal(const EncodedTable& table,
                                     const StrippedPartition& context_partition,
                                     int a, int b, double epsilon,
                                     int64_t table_rows,
                                     const ValidatorOptions& options,
                                     ValidatorScratch* scratch) {
  return ValidateLis(table, context_partition, a, b, epsilon, table_rows,
                     options, /*descending_ties=*/false, scratch);
}

ValidationOutcome ValidateAodOptimal(const EncodedTable& table,
                                     const StrippedPartition& context_partition,
                                     int a, int b, double epsilon,
                                     int64_t table_rows,
                                     const ValidatorOptions& options,
                                     ValidatorScratch* scratch) {
  return ValidateLis(table, context_partition, a, b, epsilon, table_rows,
                     options, /*descending_ties=*/true, scratch);
}

}  // namespace aod
