// Pooled per-task scratch for the validator hot paths.
//
// Every validator call sorts a class projection and walks derived
// buffers; with one ValidatorScratch borrowed per validation task (the
// driver keeps a free list, mirroring PartitionCache's PartitionScratch
// pool) the steady state performs no heap allocation regardless of class
// count. All buffers grow monotonically to the largest class seen and
// hold no state between calls — any validator may use any subset.
#ifndef AOD_OD_VALIDATOR_SCRATCH_H_
#define AOD_OD_VALIDATOR_SCRATCH_H_

#include <cstdint>
#include <vector>

#include "algo/inversions.h"

namespace aod {

class ValidatorScratch {
 public:
  /// Row-id sort buffer (the [A ASC, B ASC] ordering of one class).
  std::vector<int32_t>& rows() { return rows_; }
  /// B-projection of the sorted class.
  std::vector<int32_t>& projection() { return projection_; }
  /// Class-index ordering buffer (largest-first iteration).
  std::vector<int32_t>& order() { return order_; }
  /// A-ranks / B-ranks of the sorted class (iterative validator).
  std::vector<int32_t>& ranks_a() { return ranks_a_; }
  std::vector<int32_t>& ranks_b() { return ranks_b_; }
  /// Per-tuple swap counts and liveness (iterative validator).
  std::vector<int64_t>& swap_counts() { return swap_counts_; }
  std::vector<uint8_t>& alive() { return alive_; }
  /// Fenwick trees for dense per-element inversion counting.
  InversionScratch& inversions() { return inversions_; }

  /// Dense per-value counters over [0, cardinality), zeroed on first
  /// growth. Callers must re-zero every slot they touched before
  /// returning (decrement back or walk their rows again); that keeps the
  /// reset O(class) rather than O(cardinality).
  std::vector<int32_t>& value_counts(int64_t cardinality) {
    if (static_cast<int64_t>(value_counts_.size()) < cardinality) {
      value_counts_.resize(static_cast<size_t>(cardinality), 0);
    }
    return value_counts_;
  }

 private:
  std::vector<int32_t> rows_;
  std::vector<int32_t> projection_;
  std::vector<int32_t> order_;
  std::vector<int32_t> ranks_a_;
  std::vector<int32_t> ranks_b_;
  std::vector<int64_t> swap_counts_;
  std::vector<uint8_t> alive_;
  std::vector<int32_t> value_counts_;
  InversionScratch inversions_;
};

}  // namespace aod

#endif  // AOD_OD_VALIDATOR_SCRATCH_H_
