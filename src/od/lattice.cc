#include "od/lattice.h"

#include <algorithm>

#include "common/macros.h"

namespace aod {

LatticeNode* LatticeLevel::Find(AttributeSet set) {
  auto it = nodes_.find(set);
  return it == nodes_.end() ? nullptr : &it->second;
}

const LatticeNode* LatticeLevel::Find(AttributeSet set) const {
  auto it = nodes_.find(set);
  return it == nodes_.end() ? nullptr : &it->second;
}

void LatticeLevel::Insert(LatticeNode node) {
  AOD_CHECK_MSG(node.set.size() == level_,
                "inserting a size-%d set into level %d", node.set.size(),
                level_);
  nodes_.emplace(node.set, std::move(node));
}

void LatticeLevel::Erase(AttributeSet set) { nodes_.erase(set); }

LatticeLevel LatticeLevel::MakeFirstLevel(int num_attributes) {
  LatticeLevel level(1);
  AttributeSet full = AttributeSet::FullSet(num_attributes);
  for (int a = 0; a < num_attributes; ++a) {
    LatticeNode node;
    node.set = AttributeSet().With(a);
    node.cc = full;
    level.Insert(std::move(node));
  }
  return level;
}

LatticeLevel LatticeLevel::GenerateNext() const {
  LatticeLevel next(level_ + 1);
  // Prefix blocks: two sets join iff they differ only in their largest
  // attribute. Collect sorted attribute vectors and sort lexicographically
  // so blocks are contiguous.
  std::vector<std::vector<int>> sets;
  sets.reserve(nodes_.size());
  for (const auto& [set, node] : nodes_) {
    sets.push_back(set.ToVector());
  }
  std::sort(sets.begin(), sets.end());

  for (size_t block_start = 0; block_start < sets.size();) {
    // A block shares the first (level_ - 1) attributes.
    size_t block_end = block_start + 1;
    while (block_end < sets.size() &&
           std::equal(sets[block_start].begin(),
                      sets[block_start].end() - 1,
                      sets[block_end].begin(), sets[block_end].end() - 1)) {
      ++block_end;
    }
    for (size_t i = block_start; i < block_end; ++i) {
      for (size_t j = i + 1; j < block_end; ++j) {
        AttributeSet candidate = AttributeSet::FromVector(sets[i])
                                     .Union(AttributeSet::FromVector(sets[j]));
        // Keep only if every subset of size level_ survived.
        bool all_subsets_alive = true;
        candidate.ForEach([&](int a) {
          if (Find(candidate.Without(a)) == nullptr) {
            all_subsets_alive = false;
          }
        });
        if (!all_subsets_alive) continue;
        LatticeNode node;
        node.set = candidate;
        next.Insert(std::move(node));
      }
    }
    block_start = block_end;
  }
  return next;
}

}  // namespace aod
