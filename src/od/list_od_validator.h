// Validation of list-based ODs and OCs, exact and approximate.
//
// Implements the Sec. 3.3 extension (and its footnote 1): the LIS-based
// validator generalizes to list-based dependencies by sorting tuples in
// ascending lexicographic order of X and breaking ties with the
// *descending* (OD) or *ascending* (OC) lexicographic order of Y, then
// removing the complement of a longest non-decreasing subsequence of the
// Y-projection (tuples over Y compared lexicographically).
#ifndef AOD_OD_LIST_OD_VALIDATOR_H_
#define AOD_OD_LIST_OD_VALIDATOR_H_

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/list_od.h"
#include "od/validator_scratch.h"

namespace aod {

/// True iff r |= lhs -> rhs exactly (Def. 2.2). `scratch` (optional)
/// pools the whole-table row sort buffer across calls.
bool ValidateListOdExact(const EncodedTable& table, const ListOd& od,
                         ValidatorScratch* scratch = nullptr);

/// True iff lhs ~ rhs exactly (Def. 2.3: XY <-> YX).
bool ValidateListOcExact(const EncodedTable& table, const ListOd& od,
                         ValidatorScratch* scratch = nullptr);

/// Approximate list-based OD validation with a minimal removal set.
ValidationOutcome ValidateListOdApprox(const EncodedTable& table,
                                       const ListOd& od, double epsilon,
                                       const ValidatorOptions& options = {},
                                       ValidatorScratch* scratch = nullptr);

/// Approximate list-based OC validation with a minimal removal set.
ValidationOutcome ValidateListOcApprox(const EncodedTable& table,
                                       const ListOd& od, double epsilon,
                                       const ValidatorOptions& options = {},
                                       ValidatorScratch* scratch = nullptr);

}  // namespace aod

#endif  // AOD_OD_LIST_OD_VALIDATOR_H_
