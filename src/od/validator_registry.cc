#include "od/validator_registry.h"

#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/fd_validator.h"
#include "od/oc_validator.h"
#include "od/ofd_validator.h"

namespace aod {
namespace {

DependencyVerdict FromOutcome(ValidationOutcome outcome) {
  DependencyVerdict verdict;
  verdict.valid = outcome.valid;
  verdict.error = outcome.approx_factor;
  verdict.removal_size = outcome.removal_size;
  verdict.early_exit = outcome.early_exit;
  verdict.removal_rows = std::move(outcome.removal_rows);
  return verdict;
}

}  // namespace

DependencyVerdict ValidateDependency(const ValidationRequest& request) {
  const EncodedTable& table = *request.table;
  const StrippedPartition& partition = *request.context_partition;
  ValidatorOptions vopts = request.options;
  switch (request.kind) {
    case DependencyKind::kOfd: {
      if (request.algorithm == ValidatorKind::kExact) {
        DependencyVerdict verdict;
        verdict.valid = ValidateOfdExact(table, partition, request.target);
        return verdict;
      }
      return FromOutcome(ValidateOfdApprox(table, partition, request.target,
                                           request.epsilon,
                                           request.table_rows, vopts,
                                           request.scratch));
    }
    case DependencyKind::kOc: {
      const AttributePair pair = request.pair;
      vopts.opposite_polarity = pair.opposite;
      switch (request.algorithm) {
        case ValidatorKind::kExact: {
          DependencyVerdict verdict;
          verdict.valid = ValidateOcExact(table, partition, pair.a, pair.b,
                                          pair.opposite, request.scratch);
          return verdict;
        }
        case ValidatorKind::kIterative:
          return FromOutcome(ValidateAocIterative(
              table, partition, pair.a, pair.b, request.epsilon,
              request.table_rows, vopts, request.scratch));
        case ValidatorKind::kOptimal:
          return FromOutcome(
              request.sampler != nullptr
                  ? request.sampler->Validate(partition, pair.a, pair.b,
                                              request.epsilon, vopts,
                                              request.scratch)
                  : ValidateAocOptimal(table, partition, pair.a, pair.b,
                                       request.epsilon, request.table_rows,
                                       vopts, request.scratch));
      }
      break;
    }
    case DependencyKind::kFd: {
      DependencyVerdict verdict;
      verdict.valid = ValidateFdExact(table, partition, request.target);
      return verdict;
    }
    case DependencyKind::kAfd:
      return FromOutcome(ValidateAfdG1(table, partition, request.target,
                                       request.afd_error, request.table_rows,
                                       vopts, request.scratch));
  }
  return DependencyVerdict{};
}

}  // namespace aod
