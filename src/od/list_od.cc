#include "od/list_od.h"

namespace aod {
namespace {

std::string ListToString(const std::vector<int>& attrs,
                         const std::function<std::string(int)>& name_of) {
  std::string out = "[";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += name_of(attrs[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string ListOd::ToString(const EncodedTable& table) const {
  auto name_of = [&table](int i) { return table.name(i); };
  return ListToString(lhs, name_of) + " -> " + ListToString(rhs, name_of);
}

std::string ListOd::ToString() const {
  auto name_of = [](int i) { return std::to_string(i); };
  return ListToString(lhs, name_of) + " -> " + ListToString(rhs, name_of);
}

CanonicalOdSet MapListOdToCanonical(const ListOd& od) {
  CanonicalOdSet out;
  AttributeSet lhs_set = AttributeSet::FromVector(od.lhs);

  // R |= X -> XY  iff  for all A in Y:  X: [] -> A.
  for (int a : od.rhs) {
    out.ofds.push_back(CanonicalOfd{lhs_set, a});
  }

  // R |= X ~ Y  iff  for all i, j:
  //   [X1..Xi-1][Y1..Yj-1]: Xi ~ Yj.
  AttributeSet x_prefix;
  for (size_t i = 0; i < od.lhs.size(); ++i) {
    AttributeSet ctx = x_prefix;
    for (size_t j = 0; j < od.rhs.size(); ++j) {
      out.ocs.push_back(CanonicalOc{ctx, od.lhs[i], od.rhs[j]});
      ctx = ctx.With(od.rhs[j]);
    }
    x_prefix = x_prefix.With(od.lhs[i]);
  }
  return out;
}

bool IsTrivial(const CanonicalOc& oc) {
  return oc.a == oc.b || oc.context.Contains(oc.a) || oc.context.Contains(oc.b);
}

bool IsTrivial(const CanonicalOfd& ofd) { return ofd.context.Contains(ofd.a); }

}  // namespace aod
