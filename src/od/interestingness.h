// Interestingness scoring for discovered dependencies.
//
// The paper ranks discovered AOCs with the interestingness measure of
// [10] (Szlichta et al., VLDBJ'18) but does not restate it. We implement
// a documented surrogate that preserves the two properties the paper
// actually relies on (Exp-5/Exp-6):
//   1. dependencies with smaller contexts (lower lattice levels) score
//      higher — "dependencies found in lower levels of the lattice are
//      likely to be more interesting";
//   2. dependencies whose context partition covers more tuples (fewer
//      tuples hidden in singleton classes, where any OC holds vacuously)
//      score higher.
// Score = coverage / 2^|context|, in [0, 1]; an empty context with full
// coverage scores 1, and a vacuous context (every tuple in a singleton
// class, e.g. a key) scores 0 — ranked last, as nothing it says is
// tested by any tuple pair. See DESIGN.md, "Substitutions".
#ifndef AOD_OD_INTERESTINGNESS_H_
#define AOD_OD_INTERESTINGNESS_H_

#include <cstdint>

#include "partition/stripped_partition.h"

namespace aod {

/// Score for a dependency validated against `context_partition` on a
/// table of `table_rows` tuples. Higher is more interesting.
double InterestingnessScore(const StrippedPartition& context_partition,
                            int context_size, int64_t table_rows);

}  // namespace aod

#endif  // AOD_OD_INTERESTINGNESS_H_
