// The AOD discovery framework (paper Sec. 3.1, Fig. 1).
//
// Level-wise traversal of the set-based attribute lattice after FASTOD
// [9,10]: at each node X the framework validates OFD candidates
// X\{A}: [] -> A and OC candidates X\{A,B}: A ~ B, prunes with the
// candidate-set axioms, and scores valid dependencies by interestingness.
// The AOC validation step is pluggable — the whole point of the paper is
// that swapping the iterative validator (Alg. 1) for the LIS-based one
// (Alg. 2) turns an impractical discovery algorithm into one on par with
// exact OD discovery, while making it complete.
#ifndef AOD_OD_DISCOVERY_H_
#define AOD_OD_DISCOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/dependency_kind.h"
#include "od/discovery_stats.h"
#include "od/hybrid_sampler.h"

namespace aod {

class StrippedPartition;

namespace exec {
class ThreadPool;
}  // namespace exec

namespace shard {
class ShardChannel;
}  // namespace shard

/// A snapshot of traversal progress, delivered through
/// DiscoveryOptions::progress at each completed lattice level (from the
/// serial merge phase, so callbacks never race each other). The serving
/// layer relays these as kJobStatus frames.
struct DiscoveryProgress {
  /// The lattice level that just finished merging.
  int level = 0;
  /// Nodes merged at that level.
  int64_t nodes_merged = 0;
  /// Dependency totals so far (across all completed levels).
  int64_t total_ocs = 0;
  int64_t total_ofds = 0;
  int64_t total_fds = 0;
  int64_t total_afds = 0;
};

/// Which validation algorithm drives the search.
enum class ValidatorKind {
  /// Exact OD discovery: epsilon is treated as 0 and the linear
  /// early-exit validators are used (the paper's "OD" baseline).
  kExact,
  /// AOD discovery with the greedy iterative AOC validator of [9,10]
  /// (paper Alg. 1) — the quadratic, incomplete baseline.
  kIterative,
  /// AOD discovery with the minimal, optimal LIS-based AOC validator
  /// (paper Alg. 2) — this paper's contribution.
  kOptimal,
};

const char* ValidatorKindToString(ValidatorKind kind);

/// How candidate batches reach the shard runners when num_shards >= 1
/// (src/shard/, "Shard transports" in ARCHITECTURE.md). Discovery output
/// is bit-identical across all three — the transport moves bytes, the
/// frames carry exact bit patterns, and the merge is key-ordered.
enum class ShardTransport {
  /// Mutex/cv frame queues; runners on the shared pool (the default).
  kInProcess = 0,
  /// Localhost TCP between the coordinator and in-process runners: the
  /// full byte-transport path (length framing, partial reads) without
  /// process-spawn overhead.
  kSocket = 1,
  /// One spawned shard_runner_main process per shard over localhost TCP;
  /// the config, rank-encoded table and base partitions ship at startup.
  kProcess = 2,
};

const char* ShardTransportToString(ShardTransport transport);

struct DiscoveryOptions {
  /// Which dependency kinds the traversal searches for. The default is
  /// the paper's OD decomposition (OC + OFD); FD/AFD ride the same
  /// level-wise traversal as independent candidate groups, so any subset
  /// of kinds yields exactly the results the single-kind runs would
  /// (see ARCHITECTURE.md, "Dependency kinds").
  DependencyKindSet kinds = DependencyKindSet::OdDefault();
  /// Approximation threshold in [0, 1] (the paper's default is 0.10).
  /// Applies to the OC/OFD kinds under the approximate validators.
  double epsilon = 0.10;
  /// g1-error threshold in [0, 1] for the AFD kind: X -> A is reported
  /// when the fraction of ordered tuple pairs agreeing on X but not on A
  /// is at most this. Independent of `epsilon` and of `validator` — AFDs
  /// are inherently approximate, so the exact-validator setting does not
  /// zero this threshold.
  double afd_error = 0.05;
  /// Keep only the top_k highest-ranked dependencies across all kinds
  /// (0 = keep everything, in merge order). When set, the result list is
  /// sorted by the deterministic interestingness ranking (score desc,
  /// then level, kind, attributes) and truncated — identical for any
  /// thread count, shard count, transport and compression setting. Stats
  /// still count every discovered dependency.
  int64_t top_k = 0;
  ValidatorKind validator = ValidatorKind::kOptimal;
  /// Stop after this lattice level (0 = traverse to the top).
  int max_level = 0;
  /// Bound on the left-hand-side (context) arity of emitted candidates
  /// (0 = unbounded). An OFD at level L has |context| = L-1 and an OC
  /// has |context| = L-2, so with a bound m the traversal stops
  /// emitting OFD targets past level m+1 and OC pairs past level m+2 —
  /// a prefix-consistent subset of the unbounded run (pinned in
  /// discovery_test): every dependency with LHS arity <= m is found,
  /// with identical fields, and nothing else is. Shrinks the candidate
  /// space, the result volume and the shard wire volume in one option.
  int max_lhs_arity = 0;
  /// Abort (with partial results and timed_out set) once the run exceeds
  /// this many seconds (0 = unlimited). Mirrors the paper's 24h cap on
  /// the iterative runs.
  double time_budget_seconds = 0.0;
  /// Cooperative external cancellation: polled at exactly the seams the
  /// time budget is polled at (between candidates, between phases, in
  /// every shard-seam wait), so a cancelled run winds down as promptly
  /// as a deadline-hit run and sets DiscoveryResult::cancelled. Must be
  /// thread-safe (workers poll it concurrently) and cheap — an atomic
  /// load. The serving layer points this at the job's kill switch so a
  /// client disconnect reclaims the job's CPU mid-level. Empty = never.
  std::function<bool()> cancel;
  /// Per-level progress notifications (see DiscoveryProgress). Invoked
  /// from the driver's serial merge thread only. Empty = silent.
  std::function<void(const DiscoveryProgress&)> progress;
  /// Warm-start seam for resident services: when set (and the run is
  /// unsharded), the single-attribute base partitions are copied from
  /// this table-fingerprint-keyed cache entry instead of being re-sorted
  /// out of the columns — the expensive first step of a cold run.
  /// Indexed by attribute; must match the table (same row count and
  /// column order) and hold canonical values, which is guaranteed when
  /// it was built by StrippedPartition::FromColumn over the same
  /// EncodedTable. Borrowed; must outlive the call.
  const std::vector<std::shared_ptr<const StrippedPartition>>*
      warm_base_partitions = nullptr;
  /// Materialize removal sets on discovered dependencies (costly; used by
  /// the data-cleaning example).
  bool collect_removal_sets = false;
  /// Also search the bidirectional polarity class A asc ~ B desc for
  /// every OC candidate (Szlichta et al. [10]). Roughly doubles the OC
  /// validation work.
  bool bidirectional = false;
  /// Worker threads for candidate validation and partition
  /// materialization (1 = serial, 0 = hardware concurrency). Candidate
  /// work within a level is embarrassingly parallel — the shared-nothing
  /// analogue of the distributed dependency discovery of Saxena et al.
  /// [8]. The dependency lists and non-timing stats are bit-identical to
  /// the serial run for any thread count (see ARCHITECTURE.md for the
  /// determinism contract). Ignored when `pool` is set.
  int num_threads = 1;
  /// Optional externally owned thread pool to run on. Passing one reuses
  /// its (already warm) workers across DiscoverOds calls instead of
  /// spawning threads per run; its worker count overrides num_threads.
  /// The pool is borrowed, never owned, and must outlive the call.
  exec::ThreadPool* pool = nullptr;
  /// Put the hybrid sampling fast-rejection (od/hybrid_sampler.h, the
  /// paper's future-work direction after [6]) in front of every AOC
  /// validation. Only meaningful with ValidatorKind::kOptimal. Accepted
  /// dependencies are always exactly validated; with adversarial data a
  /// borderline-valid candidate can be fast-rejected with probability
  /// decaying in sampler_config.sample_size.
  bool enable_sampling_filter = false;
  SamplerConfig sampler_config;
  /// Derive context partitions through the cache's cost-based planner
  /// (cheapest published base, canonical values) instead of the fixed
  /// Π_{X\{max}} · Π_{{max}} rule. Dependency output is bit-identical
  /// either way (canonical normal form); only the product schedule — and
  /// so partition wall time and the product counter — changes.
  bool enable_derivation_planner = true;
  /// Byte budget for materialized partitions (0 = unlimited). When the
  /// cache exceeds it at a level boundary, the coldest derived partitions
  /// are evicted in deterministic order and re-derived on demand through
  /// the planner. The level-0/1 base partitions are never evicted, so the
  /// effective floor is their footprint. With num_shards >= 1 the budget
  /// applies to each shard runner's cache, enforced after every batch.
  int64_t partition_memory_budget_bytes = 0;
  /// Number of logical shards candidate validation is distributed over
  /// (0 = unsharded in-process validation, the default). With N >= 1 the
  /// candidate space of every lattice level is split by a pure hash of
  /// the candidate's context set across N shard runners; partitions and
  /// results cross the shard seam in the checksummed CSR wire format
  /// (src/shard/), and the deterministic key-ordered merge reduces the
  /// shard outputs. Dependency lists and all merge-side counters are
  /// bit-identical to the unsharded run for any shard count and any
  /// thread count; partition-side counters (products, resident bytes)
  /// reflect shard-local derivation and legitimately differ from the
  /// unsharded schedule (see ARCHITECTURE.md, "Sharded discovery").
  int num_shards = 0;
  /// Row-space sharding of the base-partition phase (0 = off, the
  /// default; 1..1024 = split the *rows*). Orthogonal to — and
  /// composable with — num_shards' candidate-space axis: the
  /// coordinator assigns each row shard one contiguous row range, ships
  /// only that slice of the table (O(rows / row_shards) table bytes per
  /// shard instead of O(rows)), each shard partitions its own rows
  /// locally, and the class-stitching reducer
  /// (partition/partition_stitch.h) merges the per-range fragments back
  /// into the canonical base partitions — bit-identical to the
  /// unsharded FromColumn bases, so dependency output is unchanged for
  /// any row_shards x threads x transport x compression combination
  /// (gated in tests/parallel_determinism_test). The stitched bases
  /// feed the unsharded driver's cache preload or, with num_shards >=
  /// 1, the candidate-space coordinator's bootstrap. Runs over
  /// shard_transport with the same runner binary (kProcess) or inline
  /// serving (kInProcess/kSocket); fail-stop via
  /// DiscoveryResult::shard_status (no retry ladder — the phase is a
  /// short bounded prologue).
  int row_shards = 0;
  /// Transport the shard seam runs over (only consulted when
  /// num_shards >= 1). Output is bit-identical across transports; with
  /// kProcess the time budget is only enforced between levels (remote
  /// runners validate their batch to completion) and a transport
  /// failure aborts the run with DiscoveryResult::shard_status set
  /// instead of crashing.
  ShardTransport shard_transport = ShardTransport::kInProcess;
  /// shard_runner_main binary for ShardTransport::kProcess; empty falls
  /// back to the AOD_SHARD_RUNNER environment variable.
  std::string shard_runner_path;
  /// Bound on every shard-seam connect/accept/receive, so a dead runner
  /// surfaces as a typed error instead of a hang. When a time budget is
  /// set, each wait is additionally clamped to the budget's remaining
  /// time, so a dead runner cannot overshoot a budgeted run.
  double shard_io_timeout_seconds = 300.0;
  /// Re-attempts allowed per shard per level before the shard degrades
  /// (or, with fallback off, the run aborts): a failed attempt is torn
  /// down and a fresh one — respawned process, reconnected socket —
  /// is re-seeded from the coordinator's encode-once bootstrap frames
  /// and the level is re-executed. 0 disables ALL supervision (retry,
  /// speculation, fallback): any shard fault is the typed fail-stop
  /// abort via DiscoveryResult::shard_status, exactly the pre-supervision
  /// behavior. Output stays bit-identical under any fault schedule that
  /// completes (src/shard/supervisor.h).
  int shard_max_retries = 2;
  /// Base backoff before a shard's first re-attempt; doubles per
  /// attempt with deterministic jitter, capped at 2s.
  double shard_retry_backoff_ms = 25.0;
  /// Straggler speculation (0 = off): once at least half the shards
  /// finished a level, a shard still running past this factor times the
  /// median shard latency gets one backup attempt; whichever attempt
  /// finishes first wins, and exactly one attempt's reply is merged.
  /// Needs a pool and shard_max_retries >= 1.
  double shard_speculation_factor = 0.0;
  /// After the per-level retry budget is exhausted on the socket or
  /// process transport, execute that shard's slice in-process on the
  /// coordinator's pool (for the rest of the run) instead of aborting.
  bool shard_fallback_inproc = true;
  /// Encode shard frames with the delta/varint codecs (wire.h). Output
  /// is bit-identical with compression on or off — the codecs are
  /// lossless and decode-side validation is shared — so this is purely
  /// a bytes-vs-CPU knob; DiscoveryStats reports both shard_bytes_raw
  /// and shard_bytes_wire so the ratio is observable per run.
  bool shard_wire_compression = true;
  /// Test seam: wraps every coordinator-side shard channel (e.g. in the
  /// fault-injecting FlakyChannel decorator). Identity when empty.
  std::function<std::unique_ptr<shard::ShardChannel>(
      std::unique_ptr<shard::ShardChannel>)>
      shard_channel_decorator;
};

/// One discovered dependency of any kind — the unified result record of
/// the multi-kind platform (it replaced the per-kind DiscoveredOc /
/// DiscoveredOfd structs).
///
/// Field use by kind:
///   kOc          context: a ~ b (polarity in `opposite`); level =
///                |context| + 2.
///   kOfd/kFd/kAfd  RHS attribute in `a`; b = -1, opposite = false;
///                level = |context| + 1.
/// `error` is the kind's own measure: removal fraction |s|/|r| for
/// OC/OFD (0 for exact discovery), always 0 for exact FDs, and the g1
/// violating-pair fraction for AFDs.
struct DiscoveredDependency {
  DependencyKind kind = DependencyKind::kOc;
  AttributeSet context;
  int a = -1;
  int b = -1;
  bool opposite = false;
  double error = 0.0;
  int64_t removal_size = 0;
  /// Lattice level where validated.
  int level = 0;
  double interestingness = 0.0;
  std::vector<int32_t> removal_rows;

  /// Typed views for the OD kinds (CHECK-fails on a kind mismatch).
  CanonicalOc Oc() const;
  CanonicalOfd Ofd() const;

  /// "{pos}: sal ~ bonus" (OC), "{pos}: [] -> sal" (OFD),
  /// "{pos} -> sal" (FD), "{pos} ~> sal" (AFD).
  std::string ToString(const EncodedTable& table) const;
  std::string ToString() const;
};

struct DiscoveryResult {
  /// Every discovered dependency, all kinds interleaved in deterministic
  /// merge order (per level, per node key: OFDs, OCs, FDs, AFDs) — or in
  /// ranked order when DiscoveryOptions::top_k is set.
  std::vector<DiscoveredDependency> dependencies;
  DiscoveryStats stats;
  /// True when the time budget expired; results are a valid prefix of the
  /// traversal but incomplete.
  bool timed_out = false;
  /// True when DiscoveryOptions::cancel fired: the run wound down early
  /// on request. Results are the same kind of valid prefix a deadline
  /// leaves (timed_out is typically also set — the two flags share the
  /// wind-down path; `cancelled` says who pulled the trigger).
  bool cancelled = false;
  /// OK unless a shard-transport failure (runner died, frame corrupted,
  /// receive timed out, spawn failed) aborted the run. On failure the
  /// dependency list is the complete merge of every level finished
  /// before the fault — never a partially merged level.
  Status shard_status;

  /// Borrowed pointers to the dependencies of one kind, in list order.
  std::vector<const DiscoveredDependency*> OfKind(DependencyKind kind) const;
  std::vector<const DiscoveredDependency*> Ocs() const {
    return OfKind(DependencyKind::kOc);
  }
  std::vector<const DiscoveredDependency*> Ofds() const {
    return OfKind(DependencyKind::kOfd);
  }
  std::vector<const DiscoveredDependency*> Fds() const {
    return OfKind(DependencyKind::kFd);
  }
  std::vector<const DiscoveredDependency*> Afds() const {
    return OfKind(DependencyKind::kAfd);
  }
  int64_t CountOfKind(DependencyKind kind) const;

  /// Sorts the dependency list by descending interestingness (ties:
  /// lower level first, then kind, then attribute order) — the ranking
  /// step of the framework (paper Fig. 1, step 5). The key is unique per
  /// dependency, so the order is the same for any thread or shard count.
  void SortByInterestingness();

  /// Human-readable listing of the top dependencies, grouped by kind.
  std::string Summary(const EncodedTable& table, size_t max_items = 20) const;
};

/// Runs discovery over a rank-encoded table. Requires <= 64 attributes.
DiscoveryResult DiscoverOds(const EncodedTable& table,
                            const DiscoveryOptions& options = {});

}  // namespace aod

#endif  // AOD_OD_DISCOVERY_H_
