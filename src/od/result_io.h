// Serialization of discovery results.
//
// Profiling runs feed downstream tooling (dashboards, cleaning
// pipelines, the paper's Fig. 1 expert-verification step), so results
// must leave the process in a machine-readable form. This module writes
// DiscoveryResult as JSON (attribute names resolved against the table)
// and as flat CSV rows.
#ifndef AOD_OD_RESULT_IO_H_
#define AOD_OD_RESULT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/encoder.h"
#include "od/discovery.h"

namespace aod {

/// JSON document with "ocs", "ofds" and "stats" sections — plus "fds"
/// and "afds" sections when those kinds produced results, so an oc+ofd
/// run emits the pre-multi-kind document unchanged. Attribute references
/// are emitted as names. Stable key order, 2-space indent.
std::string ResultToJson(const DiscoveryResult& result,
                         const EncodedTable& table);

/// Flat CSV: kind,context,lhs,rhs,polarity,factor,removal,level,score —
/// one row per discovered dependency, grouped by kind (oc, ofd, fd,
/// afd). Target kinds leave lhs and polarity empty.
std::string ResultToCsv(const DiscoveryResult& result,
                        const EncodedTable& table);

/// Writes `content` to `path`.
Status WriteStringToFile(const std::string& path, const std::string& content);

/// Binary serialization of a *complete* DiscoveryResult — both dependency
/// lists (including removal rows), the full DiscoveryStats counter set,
/// and the terminal flags (timed_out, cancelled, shard_status). Unlike
/// the JSON/CSV emitters above this is lossless and needs no table:
/// attributes stay as indices, doubles ship as IEEE-754 bit patterns, so
/// a round trip is bit-exact. The blob is version-prefixed raw payload
/// bytes (no frame header); the serve layer wraps slices of it in
/// kJobResultBatch frames, which add the checksummed framing.
std::vector<uint8_t> SerializeResult(const DiscoveryResult& result);

/// Rejects version mismatches, truncation, trailing bytes, out-of-range
/// attribute indices and unknown status codes with ParseError.
Result<DiscoveryResult> DeserializeResult(const uint8_t* data, size_t size);
Result<DiscoveryResult> DeserializeResult(const std::vector<uint8_t>& bytes);

}  // namespace aod

#endif  // AOD_OD_RESULT_IO_H_
