// Serialization of discovery results.
//
// Profiling runs feed downstream tooling (dashboards, cleaning
// pipelines, the paper's Fig. 1 expert-verification step), so results
// must leave the process in a machine-readable form. This module writes
// DiscoveryResult as JSON (attribute names resolved against the table)
// and as flat CSV rows.
#ifndef AOD_OD_RESULT_IO_H_
#define AOD_OD_RESULT_IO_H_

#include <string>

#include "common/status.h"
#include "data/encoder.h"
#include "od/discovery.h"

namespace aod {

/// JSON document with "ocs", "ofds" and "stats" sections. Attribute
/// references are emitted as names. Stable key order, 2-space indent.
std::string ResultToJson(const DiscoveryResult& result,
                         const EncodedTable& table);

/// Flat CSV: kind,context,lhs,rhs,polarity,factor,removal,level,score —
/// one row per discovered dependency (OFDs leave lhs empty).
std::string ResultToCsv(const DiscoveryResult& result,
                        const EncodedTable& table);

/// Writes `content` to `path`.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace aod

#endif  // AOD_OD_RESULT_IO_H_
