#include "od/list_od_validator.h"

#include <algorithm>
#include <numeric>

#include "algo/lnds.h"

namespace aod {
namespace {

/// Lexicographic three-way comparison of rows s, t over an attribute list.
int CompareOnList(const EncodedTable& table, const std::vector<int>& attrs,
                  int32_t s, int32_t t) {
  for (int a : attrs) {
    int32_t sv = table.ranks(a)[static_cast<size_t>(s)];
    int32_t tv = table.ranks(a)[static_cast<size_t>(t)];
    if (sv != tv) return sv < tv ? -1 : 1;
  }
  return 0;
}

/// Rows 0..n-1 sorted ascending by X, ties broken by Y (ascending or
/// descending as requested) — the ordering step shared by all validators.
/// Fills the caller's (typically scratch-pooled) `rows` buffer.
void SortRows(const EncodedTable& table, const ListOd& od, bool y_descending,
              std::vector<int32_t>& rows) {
  rows.resize(static_cast<size_t>(table.num_rows()));
  std::iota(rows.begin(), rows.end(), 0);
  std::sort(rows.begin(), rows.end(), [&](int32_t s, int32_t t) {
    int cx = CompareOnList(table, od.lhs, s, t);
    if (cx != 0) return cx < 0;
    int cy = CompareOnList(table, od.rhs, s, t);
    return y_descending ? cy > 0 : cy < 0;
  });
}

ValidationOutcome ApproxImpl(const EncodedTable& table, const ListOd& od,
                             double epsilon, const ValidatorOptions& options,
                             bool y_descending, ValidatorScratch* scratch) {
  const int64_t n = table.num_rows();
  ValidatorScratch local;
  ValidatorScratch& s = scratch == nullptr ? local : *scratch;
  std::vector<int32_t>& rows = s.rows();
  SortRows(table, od, y_descending, rows);
  // LNDS of the Y-projection, elements compared lexicographically.
  std::vector<int32_t> kept =
      LndsIndicesBy(static_cast<int32_t>(rows.size()), [&](int32_t p,
                                                           int32_t q) {
        return CompareOnList(table, od.rhs, rows[static_cast<size_t>(p)],
                             rows[static_cast<size_t>(q)]) <= 0;
      });
  ValidationOutcome out;
  out.removal_size = n - static_cast<int64_t>(kept.size());
  out.approx_factor =
      n == 0 ? 0.0 : static_cast<double>(out.removal_size) /
                         static_cast<double>(n);
  out.valid = out.removal_size <= MaxRemovals(epsilon, n);
  if (options.collect_removal_set) {
    size_t k = 0;
    for (int32_t i = 0; i < static_cast<int32_t>(rows.size()); ++i) {
      if (k < kept.size() && kept[k] == i) {
        ++k;
      } else {
        out.removal_rows.push_back(rows[static_cast<size_t>(i)]);
      }
    }
  }
  return out;
}

}  // namespace

bool ValidateListOdExact(const EncodedTable& table, const ListOd& od,
                         ValidatorScratch* scratch) {
  // r |= X -> Y iff, after sorting by X, (a) X-equal tuples are Y-equal
  // (no splits) and (b) the Y-projection is non-decreasing (no swaps).
  ValidatorScratch local;
  ValidatorScratch& s = scratch == nullptr ? local : *scratch;
  std::vector<int32_t>& rows = s.rows();
  SortRows(table, od, /*y_descending=*/false, rows);
  for (size_t i = 1; i < rows.size(); ++i) {
    int cx = CompareOnList(table, od.lhs, rows[i - 1], rows[i]);
    int cy = CompareOnList(table, od.rhs, rows[i - 1], rows[i]);
    if (cx == 0 && cy != 0) return false;  // split
    if (cy > 0) return false;              // swap
  }
  return true;
}

bool ValidateListOcExact(const EncodedTable& table, const ListOd& od,
                         ValidatorScratch* scratch) {
  // X ~ Y iff no swap exists: with ties broken by Y ascending, the OC
  // holds iff the Y-projection of the X-sorted order is non-decreasing.
  ValidatorScratch local;
  ValidatorScratch& s = scratch == nullptr ? local : *scratch;
  std::vector<int32_t>& rows = s.rows();
  SortRows(table, od, /*y_descending=*/false, rows);
  for (size_t i = 1; i < rows.size(); ++i) {
    if (CompareOnList(table, od.rhs, rows[i - 1], rows[i]) > 0) return false;
  }
  return true;
}

ValidationOutcome ValidateListOdApprox(const EncodedTable& table,
                                       const ListOd& od, double epsilon,
                                       const ValidatorOptions& options,
                                       ValidatorScratch* scratch) {
  return ApproxImpl(table, od, epsilon, options, /*y_descending=*/true,
                    scratch);
}

ValidationOutcome ValidateListOcApprox(const EncodedTable& table,
                                       const ListOd& od, double epsilon,
                                       const ValidatorOptions& options,
                                       ValidatorScratch* scratch) {
  return ApproxImpl(table, od, epsilon, options, /*y_descending=*/false,
                    scratch);
}

}  // namespace aod
