// The validator registry: one dispatch point for every dependency kind.
//
// Before the multi-kind platform, the candidate-dispatch switch lived
// twice — once in the discovery driver, once in the shard runner — and
// the two had to mirror each other exactly for sharded output to stay
// bit-identical. The registry collapses both call sites onto a single
// pure function keyed by DependencyKind: a ValidationRequest names the
// candidate (kind, context partition, target attribute or pair), the
// per-kind threshold and the algorithm/scratch environment, and the
// verdict comes back in one typed shape with a kind-appropriate error
// measure:
//
//   kind   validator                        error measure
//   ----   -------------------------------  -------------------------
//   kOc    exact / iterative / optimal AOC  removal fraction |s|/|r|
//   kOfd   exact / approx constancy         removal fraction |s|/|r|
//   kFd    exact refinement test            0 (exact by definition)
//   kAfd   g1 pair counting                 g1 violating-pair fraction
//
// The dispatch is a pure function of the request (the sampler, when
// present, is seeded per run), which is what lets a shard runner and the
// in-process driver produce bit-identical outcomes from the same
// candidate.
#ifndef AOD_OD_VALIDATOR_REGISTRY_H_
#define AOD_OD_VALIDATOR_REGISTRY_H_

#include <cstdint>
#include <vector>

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/dependency_kind.h"
#include "od/discovery.h"
#include "od/hybrid_sampler.h"
#include "od/lattice.h"
#include "od/validator_scratch.h"
#include "partition/stripped_partition.h"

namespace aod {

/// Everything one validation needs. `target` is the RHS attribute for
/// kOfd/kFd/kAfd; `pair` is the OC pair for kOc (its polarity rides in
/// pair.opposite). `epsilon` must already be zeroed for the exact
/// validator (the driver and runner both do this once per run).
struct ValidationRequest {
  const EncodedTable* table = nullptr;
  const StrippedPartition* context_partition = nullptr;
  DependencyKind kind = DependencyKind::kOc;
  int target = -1;
  AttributePair pair;
  /// Algorithm for the OC/OFD kinds; kFd/kAfd ignore it (exact FD is a
  /// single refinement test, AFD is always the g1 counter).
  ValidatorKind algorithm = ValidatorKind::kOptimal;
  double epsilon = 0.0;
  double afd_error = 0.05;
  int64_t table_rows = 0;
  ValidatorOptions options;
  /// Optional sampling fast-reject, consulted only for kOc under the
  /// optimal validator (mirrors the pre-registry behavior).
  AocSampler* sampler = nullptr;
  ValidatorScratch* scratch = nullptr;
};

/// One typed verdict. `error` is the kind's own measure (see the table
/// above); `removal_size` is the rows-to-delete count every kind can
/// report (for kAfd it rides along while validity is decided by g1).
struct DependencyVerdict {
  bool valid = false;
  double error = 0.0;
  int64_t removal_size = 0;
  bool early_exit = false;
  std::vector<int32_t> removal_rows;
};

/// Validates one candidate. The caller owns partitions and scratch; the
/// function never touches shared mutable state, so concurrent calls on
/// distinct scratch instances are safe.
DependencyVerdict ValidateDependency(const ValidationRequest& request);

}  // namespace aod

#endif  // AOD_OD_VALIDATOR_REGISTRY_H_
