#include "od/od_assembly.h"

#include <algorithm>

#include "common/macros.h"
#include "od/aoc_lis_validator.h"

namespace aod {

std::string DiscoveredOd::ToString(const EncodedTable& table) const {
  auto name_of = [&table](int i) { return table.name(i); };
  return context.ToString(name_of) + ": " + table.name(a) + " -> " +
         table.name(b);
}

std::vector<DiscoveredOd> AssembleOds(const EncodedTable& table,
                                      const DiscoveryResult& result,
                                      double epsilon, PartitionCache* cache) {
  AOD_CHECK(cache != nullptr);
  std::vector<DiscoveredOd> out;
  const std::vector<const DiscoveredDependency*> ocs = result.Ocs();
  const std::vector<const DiscoveredDependency*> ofds = result.Ofds();
  for (const DiscoveredDependency* oc : ocs) {
    if (oc->opposite) continue;
    // Try both orientations of the OC: A -> B needs OFD (X ∪ {A}): B,
    // B -> A needs OFD (X ∪ {B}): A.
    const std::pair<int, int> orientations[2] = {{oc->a, oc->b},
                                                 {oc->b, oc->a}};
    for (const auto& [lhs, rhs] : orientations) {
      AttributeSet ofd_context = oc->context.With(lhs);
      auto ofd_it = std::find_if(
          ofds.begin(), ofds.end(), [&](const DiscoveredDependency* f) {
            return f->context == ofd_context && f->a == rhs;
          });
      if (ofd_it == ofds.end()) continue;

      DiscoveredOd od;
      od.context = oc->context;
      od.a = lhs;
      od.b = rhs;
      od.oc_factor = oc->error;
      od.ofd_factor = (*ofd_it)->error;
      // The parts being valid does not bound the whole (Sec. 2.3):
      // compute the OD's own minimal removal set.
      auto partition = cache->Get(od.context);
      ValidatorOptions vopts;
      vopts.early_exit = false;
      ValidationOutcome outcome = ValidateAodOptimal(
          table, *partition, od.a, od.b, epsilon, table.num_rows(), vopts);
      od.approx_factor = outcome.approx_factor;
      od.removal_size = outcome.removal_size;
      if (outcome.removal_size <= MaxRemovals(epsilon, table.num_rows())) {
        out.push_back(od);
      }
    }
  }
  return out;
}

}  // namespace aod
