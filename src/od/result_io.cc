#include "od/result_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace aod {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ContextArray(const AttributeSet& context,
                         const EncodedTable& table) {
  std::string out = "[";
  bool first = true;
  context.ForEach([&](int a) {
    if (!first) out += ", ";
    out += "\"" + JsonEscape(table.name(a)) + "\"";
    first = false;
  });
  out += "]";
  return out;
}

std::string CsvEscapeField(const std::string& s) {
  if (s.find(',') == std::string::npos &&
      s.find('"') == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string ResultToJson(const DiscoveryResult& result,
                         const EncodedTable& table) {
  std::ostringstream out;
  out << "{\n  \"ocs\": [\n";
  for (size_t i = 0; i < result.ocs.size(); ++i) {
    const auto& d = result.ocs[i];
    out << "    {\"context\": " << ContextArray(d.oc.context, table)
        << ", \"lhs\": \"" << JsonEscape(table.name(d.oc.a))
        << "\", \"rhs\": \"" << JsonEscape(table.name(d.oc.b))
        << "\", \"polarity\": \"" << (d.oc.opposite ? "opposite" : "same")
        << "\", \"factor\": " << FormatDouble(d.approx_factor, 6)
        << ", \"removal\": " << d.removal_size << ", \"level\": " << d.level
        << ", \"score\": " << FormatDouble(d.interestingness, 6) << "}"
        << (i + 1 < result.ocs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"ofds\": [\n";
  for (size_t i = 0; i < result.ofds.size(); ++i) {
    const auto& d = result.ofds[i];
    out << "    {\"context\": " << ContextArray(d.ofd.context, table)
        << ", \"rhs\": \"" << JsonEscape(table.name(d.ofd.a))
        << "\", \"factor\": " << FormatDouble(d.approx_factor, 6)
        << ", \"removal\": " << d.removal_size << ", \"level\": " << d.level
        << ", \"score\": " << FormatDouble(d.interestingness, 6) << "}"
        << (i + 1 < result.ofds.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"stats\": {\n"
      << "    \"total_seconds\": "
      << FormatDouble(result.stats.total_seconds, 6) << ",\n"
      << "    \"oc_validation_seconds\": "
      << FormatDouble(result.stats.oc_validation_seconds, 6) << ",\n"
      << "    \"ofd_validation_seconds\": "
      << FormatDouble(result.stats.ofd_validation_seconds, 6) << ",\n"
      << "    \"oc_candidates_validated\": "
      << result.stats.oc_candidates_validated << ",\n"
      << "    \"ofd_candidates_validated\": "
      << result.stats.ofd_candidates_validated << ",\n"
      << "    \"oc_candidates_pruned\": "
      << result.stats.oc_candidates_pruned << ",\n"
      << "    \"nodes_processed\": " << result.stats.nodes_processed
      << ",\n"
      << "    \"levels_processed\": " << result.stats.levels_processed
      << ",\n"
      << "    \"timed_out\": " << (result.timed_out ? "true" : "false")
      << "\n  }\n}\n";
  return out.str();
}

std::string ResultToCsv(const DiscoveryResult& result,
                        const EncodedTable& table) {
  std::ostringstream out;
  out << "kind,context,lhs,rhs,polarity,factor,removal,level,score\n";
  auto context_string = [&table](const AttributeSet& context) {
    std::vector<std::string> names;
    context.ForEach([&](int a) { names.push_back(table.name(a)); });
    return JoinStrings(names, "|");
  };
  for (const auto& d : result.ocs) {
    out << "oc," << CsvEscapeField(context_string(d.oc.context)) << ","
        << CsvEscapeField(table.name(d.oc.a)) << ","
        << CsvEscapeField(table.name(d.oc.b)) << ","
        << (d.oc.opposite ? "opposite" : "same") << ","
        << FormatDouble(d.approx_factor, 6) << "," << d.removal_size << ","
        << d.level << "," << FormatDouble(d.interestingness, 6) << "\n";
  }
  for (const auto& d : result.ofds) {
    out << "ofd," << CsvEscapeField(context_string(d.ofd.context)) << ",,"
        << CsvEscapeField(table.name(d.ofd.a)) << ",,"
        << FormatDouble(d.approx_factor, 6) << "," << d.removal_size << ","
        << d.level << "," << FormatDouble(d.interestingness, 6) << "\n";
  }
  return out.str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << content;
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace aod
