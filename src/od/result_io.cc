#include "od/result_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "shard/wire.h"

namespace aod {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ContextArray(const AttributeSet& context,
                         const EncodedTable& table) {
  std::string out = "[";
  bool first = true;
  context.ForEach([&](int a) {
    if (!first) out += ", ";
    out += "\"" + JsonEscape(table.name(a)) + "\"";
    first = false;
  });
  out += "]";
  return out;
}

std::string CsvEscapeField(const std::string& s) {
  if (s.find(',') == std::string::npos &&
      s.find('"') == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string ResultToJson(const DiscoveryResult& result,
                         const EncodedTable& table) {
  std::ostringstream out;
  // One record for an OC pair; target kinds (OFD/FD/AFD) share the
  // rhs-only shape below.
  auto pair_record = [&](const DiscoveredDependency& d, bool last) {
    out << "    {\"context\": " << ContextArray(d.context, table)
        << ", \"lhs\": \"" << JsonEscape(table.name(d.a)) << "\", \"rhs\": \""
        << JsonEscape(table.name(d.b)) << "\", \"polarity\": \""
        << (d.opposite ? "opposite" : "same")
        << "\", \"factor\": " << FormatDouble(d.error, 6)
        << ", \"removal\": " << d.removal_size << ", \"level\": " << d.level
        << ", \"score\": " << FormatDouble(d.interestingness, 6) << "}"
        << (last ? "" : ",") << "\n";
  };
  auto target_record = [&](const DiscoveredDependency& d, bool last) {
    out << "    {\"context\": " << ContextArray(d.context, table)
        << ", \"rhs\": \"" << JsonEscape(table.name(d.a))
        << "\", \"factor\": " << FormatDouble(d.error, 6)
        << ", \"removal\": " << d.removal_size << ", \"level\": " << d.level
        << ", \"score\": " << FormatDouble(d.interestingness, 6) << "}"
        << (last ? "" : ",") << "\n";
  };
  const auto ocs = result.Ocs();
  const auto ofds = result.Ofds();
  const auto fds = result.Fds();
  const auto afds = result.Afds();
  out << "{\n  \"ocs\": [\n";
  for (size_t i = 0; i < ocs.size(); ++i) {
    pair_record(*ocs[i], i + 1 == ocs.size());
  }
  out << "  ],\n  \"ofds\": [\n";
  for (size_t i = 0; i < ofds.size(); ++i) {
    target_record(*ofds[i], i + 1 == ofds.size());
  }
  out << "  ],\n";
  // FD/AFD sections appear only when those kinds produced results, so an
  // oc+ofd run (the default) emits the document PR 8 clients parse.
  if (!fds.empty()) {
    out << "  \"fds\": [\n";
    for (size_t i = 0; i < fds.size(); ++i) {
      target_record(*fds[i], i + 1 == fds.size());
    }
    out << "  ],\n";
  }
  if (!afds.empty()) {
    out << "  \"afds\": [\n";
    for (size_t i = 0; i < afds.size(); ++i) {
      target_record(*afds[i], i + 1 == afds.size());
    }
    out << "  ],\n";
  }
  const bool fd_kinds_ran = result.stats.fd_candidates_validated +
                                result.stats.afd_candidates_validated >
                            0;
  out << "  \"stats\": {\n"
      << "    \"total_seconds\": "
      << FormatDouble(result.stats.total_seconds, 6) << ",\n"
      << "    \"oc_validation_seconds\": "
      << FormatDouble(result.stats.oc_validation_seconds, 6) << ",\n"
      << "    \"ofd_validation_seconds\": "
      << FormatDouble(result.stats.ofd_validation_seconds, 6) << ",\n";
  if (fd_kinds_ran) {
    out << "    \"fd_validation_seconds\": "
        << FormatDouble(result.stats.fd_validation_seconds, 6) << ",\n"
        << "    \"afd_validation_seconds\": "
        << FormatDouble(result.stats.afd_validation_seconds, 6) << ",\n";
  }
  out << "    \"oc_candidates_validated\": "
      << result.stats.oc_candidates_validated << ",\n"
      << "    \"ofd_candidates_validated\": "
      << result.stats.ofd_candidates_validated << ",\n";
  if (fd_kinds_ran) {
    out << "    \"fd_candidates_validated\": "
        << result.stats.fd_candidates_validated << ",\n"
        << "    \"afd_candidates_validated\": "
        << result.stats.afd_candidates_validated << ",\n";
  }
  out << "    \"oc_candidates_pruned\": "
      << result.stats.oc_candidates_pruned << ",\n"
      << "    \"nodes_processed\": " << result.stats.nodes_processed
      << ",\n"
      << "    \"levels_processed\": " << result.stats.levels_processed
      << ",\n"
      << "    \"timed_out\": " << (result.timed_out ? "true" : "false")
      << "\n  }\n}\n";
  return out.str();
}

std::string ResultToCsv(const DiscoveryResult& result,
                        const EncodedTable& table) {
  std::ostringstream out;
  out << "kind,context,lhs,rhs,polarity,factor,removal,level,score\n";
  auto context_string = [&table](const AttributeSet& context) {
    std::vector<std::string> names;
    context.ForEach([&](int a) { names.push_back(table.name(a)); });
    return JoinStrings(names, "|");
  };
  auto target_row = [&](const char* kind, const DiscoveredDependency& d) {
    out << kind << "," << CsvEscapeField(context_string(d.context)) << ",,"
        << CsvEscapeField(table.name(d.a)) << ",,"
        << FormatDouble(d.error, 6) << "," << d.removal_size << ","
        << d.level << "," << FormatDouble(d.interestingness, 6) << "\n";
  };
  // Kind-grouped row order (all OCs, then OFDs, FDs, AFDs) — the PR 8
  // layout, with the new kinds appended.
  for (const DiscoveredDependency* d : result.Ocs()) {
    out << "oc," << CsvEscapeField(context_string(d->context)) << ","
        << CsvEscapeField(table.name(d->a)) << ","
        << CsvEscapeField(table.name(d->b)) << ","
        << (d->opposite ? "opposite" : "same") << ","
        << FormatDouble(d->error, 6) << "," << d->removal_size << ","
        << d->level << "," << FormatDouble(d->interestingness, 6) << "\n";
  }
  for (const DiscoveredDependency* d : result.Ofds()) target_row("ofd", *d);
  for (const DiscoveredDependency* d : result.Fds()) target_row("fd", *d);
  for (const DiscoveredDependency* d : result.Afds()) target_row("afd", *d);
  return out.str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << content;
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

namespace {

/// Bump on any layout change; the decoder rejects everything else. The
/// blob is an internal interchange format (server <-> client of the same
/// build lineage), so there is no cross-version decode path.
///
/// Version 2: the per-kind OC/OFD record lists became one unified list of
/// kind-tagged DiscoveredDependency records, and DiscoveryStats gained
/// the FD/AFD counter block.
constexpr uint16_t kResultBlobVersion = 2;

void PutStats(shard::WireWriter& w, const DiscoveryStats& s) {
  w.PutDouble(s.total_seconds);
  w.PutDouble(s.oc_validation_seconds);
  w.PutDouble(s.ofd_validation_seconds);
  w.PutDouble(s.fd_validation_seconds);
  w.PutDouble(s.afd_validation_seconds);
  w.PutDouble(s.partition_seconds);
  w.PutDouble(s.candidate_wall_seconds);
  w.PutDouble(s.validation_wall_seconds);
  w.PutDouble(s.partition_wall_seconds);
  w.PutDouble(s.merge_wall_seconds);
  w.PutVarintI64(s.threads_used);
  w.PutVarintI64(s.shards_used);
  w.PutVarintI64(s.shard_bytes_shipped);
  w.PutVarint(s.shard_bytes_per_shard.size());
  for (int64_t b : s.shard_bytes_per_shard) w.PutVarintI64(b);
  w.PutVarintI64(s.shard_bytes_raw);
  w.PutVarintI64(s.shard_bytes_wire);
  w.PutVarint(s.shard_frame_bytes.size());
  for (const auto& fb : s.shard_frame_bytes) {
    w.PutString(fb.frame_type);
    w.PutVarintI64(fb.bytes_raw);
    w.PutVarintI64(fb.bytes_wire);
  }
  w.PutVarintI64(s.shard_retries);
  w.PutVarintI64(s.shard_respawns);
  w.PutVarintI64(s.shard_speculative_wins);
  w.PutVarintI64(s.shard_speculative_losses);
  w.PutVarintI64(s.shard_fallback_shards);
  w.PutVarintI64(s.shard_footers_missing);
  w.PutVarintI64(s.partition_bytes_peak);
  w.PutVarintI64(s.partition_bytes_evicted);
  w.PutVarintI64(s.partition_bytes_final);
  w.PutVarintI64(s.planner_derivations);
  w.PutVarintI64(s.planner_cost_estimated);
  w.PutVarintI64(s.planner_cost_realized);
  w.PutVarintI64(s.partitions_evicted);
  w.PutVarintI64(s.oc_candidates_validated);
  w.PutVarintI64(s.ofd_candidates_validated);
  w.PutVarintI64(s.fd_candidates_validated);
  w.PutVarintI64(s.afd_candidates_validated);
  w.PutVarintI64(s.oc_candidates_pruned);
  w.PutVarintI64(s.nodes_processed);
  w.PutVarintI64(s.partitions_computed);
  w.PutVarintI64(s.levels_processed);
  w.PutVarint(s.ocs_per_level.size());
  for (int64_t v : s.ocs_per_level) w.PutVarintI64(v);
  w.PutVarint(s.ofds_per_level.size());
  for (int64_t v : s.ofds_per_level) w.PutVarintI64(v);
  w.PutVarint(s.fds_per_level.size());
  for (int64_t v : s.fds_per_level) w.PutVarintI64(v);
  w.PutVarint(s.afds_per_level.size());
  for (int64_t v : s.afds_per_level) w.PutVarintI64(v);
  w.PutVarint(s.nodes_per_level.size());
  for (int64_t v : s.nodes_per_level) w.PutVarintI64(v);
}

Status GetI64Vector(shard::WireReader& r, std::vector<int64_t>* out) {
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&count));
  // Each element costs at least one payload byte; a count beyond the
  // remaining bytes is structurally impossible, so reject it before
  // any allocation.
  if (count > r.remaining()) {
    return Status::ParseError("result blob: vector count exceeds payload");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int64_t v = 0;
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    out->push_back(v);
  }
  return Status::OK();
}

Status GetStats(shard::WireReader& r, DiscoveryStats* s) {
  AOD_RETURN_NOT_OK(r.GetDouble(&s->total_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->oc_validation_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->ofd_validation_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->fd_validation_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->afd_validation_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->partition_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->candidate_wall_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->validation_wall_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->partition_wall_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->merge_wall_seconds));
  int64_t v = 0;
  AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
  s->threads_used = static_cast<int>(v);
  AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
  s->shards_used = static_cast<int>(v);
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_bytes_shipped));
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->shard_bytes_per_shard));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_bytes_raw));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_bytes_wire));
  uint64_t frame_count = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&frame_count));
  if (frame_count > r.remaining()) {
    return Status::ParseError("result blob: frame-bytes count exceeds payload");
  }
  s->shard_frame_bytes.clear();
  s->shard_frame_bytes.reserve(frame_count);
  for (uint64_t i = 0; i < frame_count; ++i) {
    DiscoveryStats::FrameTypeBytes fb;
    AOD_RETURN_NOT_OK(r.GetString(&fb.frame_type));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&fb.bytes_raw));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&fb.bytes_wire));
    s->shard_frame_bytes.push_back(std::move(fb));
  }
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_retries));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_respawns));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_speculative_wins));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_speculative_losses));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_fallback_shards));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_footers_missing));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partition_bytes_peak));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partition_bytes_evicted));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partition_bytes_final));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->planner_derivations));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->planner_cost_estimated));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->planner_cost_realized));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partitions_evicted));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->oc_candidates_validated));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->ofd_candidates_validated));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->fd_candidates_validated));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->afd_candidates_validated));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->oc_candidates_pruned));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->nodes_processed));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partitions_computed));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
  s->levels_processed = static_cast<int>(v);
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->ocs_per_level));
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->ofds_per_level));
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->fds_per_level));
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->afds_per_level));
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->nodes_per_level));
  return Status::OK();
}

Status CheckAttribute(int a, const char* what) {
  if (a < 0 || a >= AttributeSet::kMaxAttributes) {
    return Status::ParseError(std::string("result blob: ") + what +
                              " attribute out of range");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> SerializeResult(const DiscoveryResult& result) {
  shard::WireWriter w;
  w.PutU16(kResultBlobVersion);
  w.PutVarint(result.dependencies.size());
  for (const auto& d : result.dependencies) {
    w.PutU8(static_cast<uint8_t>(d.kind));
    w.PutVarint(d.context.bits());
    w.PutVarintI64(d.a);
    w.PutVarintI64(d.b);
    w.PutU8(d.opposite ? 1 : 0);
    w.PutDouble(d.error);
    w.PutVarintI64(d.removal_size);
    w.PutVarintI64(d.level);
    w.PutDouble(d.interestingness);
    w.PutI32Array(d.removal_rows);
  }
  PutStats(w, result.stats);
  w.PutU8(result.timed_out ? 1 : 0);
  w.PutU8(result.cancelled ? 1 : 0);
  w.PutU8(static_cast<uint8_t>(result.shard_status.code()));
  w.PutString(result.shard_status.message());
  return w.payload();
}

Result<DiscoveryResult> DeserializeResult(const uint8_t* data, size_t size) {
  shard::WireReader r(data, size);
  uint16_t version = 0;
  AOD_RETURN_NOT_OK(r.GetU16(&version));
  if (version != kResultBlobVersion) {
    return Status::ParseError("result blob: unsupported version " +
                              std::to_string(version));
  }
  DiscoveryResult result;
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&count));
  if (count > r.remaining()) {
    return Status::ParseError(
        "result blob: dependency count exceeds payload");
  }
  result.dependencies.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DiscoveredDependency d;
    uint8_t kind = 0;
    uint64_t bits = 0;
    int64_t v = 0;
    AOD_RETURN_NOT_OK(r.GetU8(&kind));
    if (kind >= kNumDependencyKinds) {
      return Status::ParseError("result blob: unknown dependency kind id " +
                                std::to_string(kind));
    }
    d.kind = static_cast<DependencyKind>(kind);
    AOD_RETURN_NOT_OK(r.GetVarint(&bits));
    d.context = AttributeSet(bits);
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    d.a = static_cast<int>(v);
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    d.b = static_cast<int>(v);
    uint8_t opposite = 0;
    AOD_RETURN_NOT_OK(r.GetU8(&opposite));
    if (opposite > 1) {
      return Status::ParseError("result blob: bad polarity flag");
    }
    d.opposite = opposite != 0;
    // The pair fields are meaningful only for the OC kind; a target-kind
    // record carrying them is a forgery, not a benign extra.
    if (d.kind == DependencyKind::kOc) {
      AOD_RETURN_NOT_OK(CheckAttribute(d.a, "OC lhs"));
      AOD_RETURN_NOT_OK(CheckAttribute(d.b, "OC rhs"));
    } else {
      AOD_RETURN_NOT_OK(CheckAttribute(d.a, "target"));
      if (d.b != -1 || d.opposite) {
        return Status::ParseError(
            "result blob: target-kind record carries OC pair fields");
      }
    }
    AOD_RETURN_NOT_OK(r.GetDouble(&d.error));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&d.removal_size));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    d.level = static_cast<int>(v);
    AOD_RETURN_NOT_OK(r.GetDouble(&d.interestingness));
    AOD_RETURN_NOT_OK(r.GetI32Array(&d.removal_rows));
    result.dependencies.push_back(std::move(d));
  }
  AOD_RETURN_NOT_OK(GetStats(r, &result.stats));
  uint8_t flag = 0;
  AOD_RETURN_NOT_OK(r.GetU8(&flag));
  result.timed_out = flag != 0;
  AOD_RETURN_NOT_OK(r.GetU8(&flag));
  result.cancelled = flag != 0;
  uint8_t code = 0;
  AOD_RETURN_NOT_OK(r.GetU8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kShuttingDown)) {
    return Status::ParseError("result blob: unknown status code");
  }
  std::string message;
  AOD_RETURN_NOT_OK(r.GetString(&message));
  result.shard_status = Status(static_cast<StatusCode>(code),
                               std::move(message));
  AOD_RETURN_NOT_OK(r.ExpectEnd());
  return result;
}

Result<DiscoveryResult> DeserializeResult(const std::vector<uint8_t>& bytes) {
  return DeserializeResult(bytes.data(), bytes.size());
}

}  // namespace aod
