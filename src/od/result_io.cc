#include "od/result_io.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "shard/wire.h"

namespace aod {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ContextArray(const AttributeSet& context,
                         const EncodedTable& table) {
  std::string out = "[";
  bool first = true;
  context.ForEach([&](int a) {
    if (!first) out += ", ";
    out += "\"" + JsonEscape(table.name(a)) + "\"";
    first = false;
  });
  out += "]";
  return out;
}

std::string CsvEscapeField(const std::string& s) {
  if (s.find(',') == std::string::npos &&
      s.find('"') == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

std::string ResultToJson(const DiscoveryResult& result,
                         const EncodedTable& table) {
  std::ostringstream out;
  out << "{\n  \"ocs\": [\n";
  for (size_t i = 0; i < result.ocs.size(); ++i) {
    const auto& d = result.ocs[i];
    out << "    {\"context\": " << ContextArray(d.oc.context, table)
        << ", \"lhs\": \"" << JsonEscape(table.name(d.oc.a))
        << "\", \"rhs\": \"" << JsonEscape(table.name(d.oc.b))
        << "\", \"polarity\": \"" << (d.oc.opposite ? "opposite" : "same")
        << "\", \"factor\": " << FormatDouble(d.approx_factor, 6)
        << ", \"removal\": " << d.removal_size << ", \"level\": " << d.level
        << ", \"score\": " << FormatDouble(d.interestingness, 6) << "}"
        << (i + 1 < result.ocs.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"ofds\": [\n";
  for (size_t i = 0; i < result.ofds.size(); ++i) {
    const auto& d = result.ofds[i];
    out << "    {\"context\": " << ContextArray(d.ofd.context, table)
        << ", \"rhs\": \"" << JsonEscape(table.name(d.ofd.a))
        << "\", \"factor\": " << FormatDouble(d.approx_factor, 6)
        << ", \"removal\": " << d.removal_size << ", \"level\": " << d.level
        << ", \"score\": " << FormatDouble(d.interestingness, 6) << "}"
        << (i + 1 < result.ofds.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"stats\": {\n"
      << "    \"total_seconds\": "
      << FormatDouble(result.stats.total_seconds, 6) << ",\n"
      << "    \"oc_validation_seconds\": "
      << FormatDouble(result.stats.oc_validation_seconds, 6) << ",\n"
      << "    \"ofd_validation_seconds\": "
      << FormatDouble(result.stats.ofd_validation_seconds, 6) << ",\n"
      << "    \"oc_candidates_validated\": "
      << result.stats.oc_candidates_validated << ",\n"
      << "    \"ofd_candidates_validated\": "
      << result.stats.ofd_candidates_validated << ",\n"
      << "    \"oc_candidates_pruned\": "
      << result.stats.oc_candidates_pruned << ",\n"
      << "    \"nodes_processed\": " << result.stats.nodes_processed
      << ",\n"
      << "    \"levels_processed\": " << result.stats.levels_processed
      << ",\n"
      << "    \"timed_out\": " << (result.timed_out ? "true" : "false")
      << "\n  }\n}\n";
  return out.str();
}

std::string ResultToCsv(const DiscoveryResult& result,
                        const EncodedTable& table) {
  std::ostringstream out;
  out << "kind,context,lhs,rhs,polarity,factor,removal,level,score\n";
  auto context_string = [&table](const AttributeSet& context) {
    std::vector<std::string> names;
    context.ForEach([&](int a) { names.push_back(table.name(a)); });
    return JoinStrings(names, "|");
  };
  for (const auto& d : result.ocs) {
    out << "oc," << CsvEscapeField(context_string(d.oc.context)) << ","
        << CsvEscapeField(table.name(d.oc.a)) << ","
        << CsvEscapeField(table.name(d.oc.b)) << ","
        << (d.oc.opposite ? "opposite" : "same") << ","
        << FormatDouble(d.approx_factor, 6) << "," << d.removal_size << ","
        << d.level << "," << FormatDouble(d.interestingness, 6) << "\n";
  }
  for (const auto& d : result.ofds) {
    out << "ofd," << CsvEscapeField(context_string(d.ofd.context)) << ",,"
        << CsvEscapeField(table.name(d.ofd.a)) << ",,"
        << FormatDouble(d.approx_factor, 6) << "," << d.removal_size << ","
        << d.level << "," << FormatDouble(d.interestingness, 6) << "\n";
  }
  return out.str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << content;
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

namespace {

/// Bump on any layout change; the decoder rejects everything else. The
/// blob is an internal interchange format (server <-> client of the same
/// build lineage), so there is no cross-version decode path.
constexpr uint16_t kResultBlobVersion = 1;

void PutStats(shard::WireWriter& w, const DiscoveryStats& s) {
  w.PutDouble(s.total_seconds);
  w.PutDouble(s.oc_validation_seconds);
  w.PutDouble(s.ofd_validation_seconds);
  w.PutDouble(s.partition_seconds);
  w.PutDouble(s.candidate_wall_seconds);
  w.PutDouble(s.validation_wall_seconds);
  w.PutDouble(s.partition_wall_seconds);
  w.PutDouble(s.merge_wall_seconds);
  w.PutVarintI64(s.threads_used);
  w.PutVarintI64(s.shards_used);
  w.PutVarintI64(s.shard_bytes_shipped);
  w.PutVarint(s.shard_bytes_per_shard.size());
  for (int64_t b : s.shard_bytes_per_shard) w.PutVarintI64(b);
  w.PutVarintI64(s.shard_bytes_raw);
  w.PutVarintI64(s.shard_bytes_wire);
  w.PutVarint(s.shard_frame_bytes.size());
  for (const auto& fb : s.shard_frame_bytes) {
    w.PutString(fb.frame_type);
    w.PutVarintI64(fb.bytes_raw);
    w.PutVarintI64(fb.bytes_wire);
  }
  w.PutVarintI64(s.shard_retries);
  w.PutVarintI64(s.shard_respawns);
  w.PutVarintI64(s.shard_speculative_wins);
  w.PutVarintI64(s.shard_speculative_losses);
  w.PutVarintI64(s.shard_fallback_shards);
  w.PutVarintI64(s.shard_footers_missing);
  w.PutVarintI64(s.partition_bytes_peak);
  w.PutVarintI64(s.partition_bytes_evicted);
  w.PutVarintI64(s.partition_bytes_final);
  w.PutVarintI64(s.planner_derivations);
  w.PutVarintI64(s.planner_cost_estimated);
  w.PutVarintI64(s.planner_cost_realized);
  w.PutVarintI64(s.partitions_evicted);
  w.PutVarintI64(s.oc_candidates_validated);
  w.PutVarintI64(s.ofd_candidates_validated);
  w.PutVarintI64(s.oc_candidates_pruned);
  w.PutVarintI64(s.nodes_processed);
  w.PutVarintI64(s.partitions_computed);
  w.PutVarintI64(s.levels_processed);
  w.PutVarint(s.ocs_per_level.size());
  for (int64_t v : s.ocs_per_level) w.PutVarintI64(v);
  w.PutVarint(s.ofds_per_level.size());
  for (int64_t v : s.ofds_per_level) w.PutVarintI64(v);
  w.PutVarint(s.nodes_per_level.size());
  for (int64_t v : s.nodes_per_level) w.PutVarintI64(v);
}

Status GetI64Vector(shard::WireReader& r, std::vector<int64_t>* out) {
  uint64_t count = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&count));
  // Each element costs at least one payload byte; a count beyond the
  // remaining bytes is structurally impossible, so reject it before
  // any allocation.
  if (count > r.remaining()) {
    return Status::ParseError("result blob: vector count exceeds payload");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int64_t v = 0;
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    out->push_back(v);
  }
  return Status::OK();
}

Status GetStats(shard::WireReader& r, DiscoveryStats* s) {
  AOD_RETURN_NOT_OK(r.GetDouble(&s->total_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->oc_validation_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->ofd_validation_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->partition_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->candidate_wall_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->validation_wall_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->partition_wall_seconds));
  AOD_RETURN_NOT_OK(r.GetDouble(&s->merge_wall_seconds));
  int64_t v = 0;
  AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
  s->threads_used = static_cast<int>(v);
  AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
  s->shards_used = static_cast<int>(v);
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_bytes_shipped));
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->shard_bytes_per_shard));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_bytes_raw));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_bytes_wire));
  uint64_t frame_count = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&frame_count));
  if (frame_count > r.remaining()) {
    return Status::ParseError("result blob: frame-bytes count exceeds payload");
  }
  s->shard_frame_bytes.clear();
  s->shard_frame_bytes.reserve(frame_count);
  for (uint64_t i = 0; i < frame_count; ++i) {
    DiscoveryStats::FrameTypeBytes fb;
    AOD_RETURN_NOT_OK(r.GetString(&fb.frame_type));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&fb.bytes_raw));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&fb.bytes_wire));
    s->shard_frame_bytes.push_back(std::move(fb));
  }
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_retries));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_respawns));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_speculative_wins));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_speculative_losses));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_fallback_shards));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->shard_footers_missing));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partition_bytes_peak));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partition_bytes_evicted));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partition_bytes_final));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->planner_derivations));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->planner_cost_estimated));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->planner_cost_realized));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partitions_evicted));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->oc_candidates_validated));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->ofd_candidates_validated));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->oc_candidates_pruned));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->nodes_processed));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&s->partitions_computed));
  AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
  s->levels_processed = static_cast<int>(v);
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->ocs_per_level));
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->ofds_per_level));
  AOD_RETURN_NOT_OK(GetI64Vector(r, &s->nodes_per_level));
  return Status::OK();
}

Status CheckAttribute(int a, const char* what) {
  if (a < 0 || a >= AttributeSet::kMaxAttributes) {
    return Status::ParseError(std::string("result blob: ") + what +
                              " attribute out of range");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> SerializeResult(const DiscoveryResult& result) {
  shard::WireWriter w;
  w.PutU16(kResultBlobVersion);
  w.PutVarint(result.ocs.size());
  for (const auto& d : result.ocs) {
    w.PutVarint(d.oc.context.bits());
    w.PutVarintI64(d.oc.a);
    w.PutVarintI64(d.oc.b);
    w.PutU8(d.oc.opposite ? 1 : 0);
    w.PutDouble(d.approx_factor);
    w.PutVarintI64(d.removal_size);
    w.PutVarintI64(d.level);
    w.PutDouble(d.interestingness);
    w.PutI32Array(d.removal_rows);
  }
  w.PutVarint(result.ofds.size());
  for (const auto& d : result.ofds) {
    w.PutVarint(d.ofd.context.bits());
    w.PutVarintI64(d.ofd.a);
    w.PutDouble(d.approx_factor);
    w.PutVarintI64(d.removal_size);
    w.PutVarintI64(d.level);
    w.PutDouble(d.interestingness);
    w.PutI32Array(d.removal_rows);
  }
  PutStats(w, result.stats);
  w.PutU8(result.timed_out ? 1 : 0);
  w.PutU8(result.cancelled ? 1 : 0);
  w.PutU8(static_cast<uint8_t>(result.shard_status.code()));
  w.PutString(result.shard_status.message());
  return w.payload();
}

Result<DiscoveryResult> DeserializeResult(const uint8_t* data, size_t size) {
  shard::WireReader r(data, size);
  uint16_t version = 0;
  AOD_RETURN_NOT_OK(r.GetU16(&version));
  if (version != kResultBlobVersion) {
    return Status::ParseError("result blob: unsupported version " +
                              std::to_string(version));
  }
  DiscoveryResult result;
  uint64_t oc_count = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&oc_count));
  if (oc_count > r.remaining()) {
    return Status::ParseError("result blob: OC count exceeds payload");
  }
  result.ocs.reserve(oc_count);
  for (uint64_t i = 0; i < oc_count; ++i) {
    DiscoveredOc d;
    uint64_t bits = 0;
    int64_t v = 0;
    AOD_RETURN_NOT_OK(r.GetVarint(&bits));
    d.oc.context = AttributeSet(bits);
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    d.oc.a = static_cast<int>(v);
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    d.oc.b = static_cast<int>(v);
    AOD_RETURN_NOT_OK(CheckAttribute(d.oc.a, "OC lhs"));
    AOD_RETURN_NOT_OK(CheckAttribute(d.oc.b, "OC rhs"));
    uint8_t opposite = 0;
    AOD_RETURN_NOT_OK(r.GetU8(&opposite));
    if (opposite > 1) {
      return Status::ParseError("result blob: bad OC polarity flag");
    }
    d.oc.opposite = opposite != 0;
    AOD_RETURN_NOT_OK(r.GetDouble(&d.approx_factor));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&d.removal_size));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    d.level = static_cast<int>(v);
    AOD_RETURN_NOT_OK(r.GetDouble(&d.interestingness));
    AOD_RETURN_NOT_OK(r.GetI32Array(&d.removal_rows));
    result.ocs.push_back(std::move(d));
  }
  uint64_t ofd_count = 0;
  AOD_RETURN_NOT_OK(r.GetVarint(&ofd_count));
  if (ofd_count > r.remaining()) {
    return Status::ParseError("result blob: OFD count exceeds payload");
  }
  result.ofds.reserve(ofd_count);
  for (uint64_t i = 0; i < ofd_count; ++i) {
    DiscoveredOfd d;
    uint64_t bits = 0;
    int64_t v = 0;
    AOD_RETURN_NOT_OK(r.GetVarint(&bits));
    d.ofd.context = AttributeSet(bits);
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    d.ofd.a = static_cast<int>(v);
    AOD_RETURN_NOT_OK(CheckAttribute(d.ofd.a, "OFD rhs"));
    AOD_RETURN_NOT_OK(r.GetDouble(&d.approx_factor));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&d.removal_size));
    AOD_RETURN_NOT_OK(r.GetVarintI64(&v));
    d.level = static_cast<int>(v);
    AOD_RETURN_NOT_OK(r.GetDouble(&d.interestingness));
    AOD_RETURN_NOT_OK(r.GetI32Array(&d.removal_rows));
    result.ofds.push_back(std::move(d));
  }
  AOD_RETURN_NOT_OK(GetStats(r, &result.stats));
  uint8_t flag = 0;
  AOD_RETURN_NOT_OK(r.GetU8(&flag));
  result.timed_out = flag != 0;
  AOD_RETURN_NOT_OK(r.GetU8(&flag));
  result.cancelled = flag != 0;
  uint8_t code = 0;
  AOD_RETURN_NOT_OK(r.GetU8(&code));
  if (code > static_cast<uint8_t>(StatusCode::kShuttingDown)) {
    return Status::ParseError("result blob: unknown status code");
  }
  std::string message;
  AOD_RETURN_NOT_OK(r.GetString(&message));
  result.shard_status = Status(static_cast<StatusCode>(code),
                               std::move(message));
  AOD_RETURN_NOT_OK(r.ExpectEnd());
  return result;
}

Result<DiscoveryResult> DeserializeResult(const std::vector<uint8_t>& bytes) {
  return DeserializeResult(bytes.data(), bytes.size());
}

}  // namespace aod
