#include "od/discovery.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "exec/parallel_for.h"
#include "exec/task_group.h"
#include "exec/thread_pool.h"
#include "od/interestingness.h"
#include "od/lattice.h"
#include "od/validator_registry.h"
#include "od/validator_scratch.h"
#include "partition/partition_cache.h"
#include "shard/coordinator.h"
#include "shard/row_sharding.h"

namespace aod {
namespace {

/// The candidate lists of one lattice node, computed in the planning
/// phase from the completed level below (read-only), before any
/// validation of the current level runs.
struct NodePlan {
  /// C_c+(X) = ∩_{A∈X} C_c+(X\{A}), before this level's OFD results.
  AttributeSet cc;
  /// OFD targets A ∈ X ∩ cc, ascending.
  std::vector<int> ofd_targets;
  /// OC candidate pairs surviving inheritance and constancy pruning, in
  /// deterministic generation order (lexicographic, polarity inner).
  std::vector<AttributePair> oc_pairs;
  int64_t oc_pruned = 0;
  /// The FD and AFD groups' TANE candidate sets and their targets
  /// A ∈ X ∩ cc_{fd,afd}, ascending. Each group is planned only when
  /// every subset node is alive for that group (see LatticeNode).
  AttributeSet cc_fd;
  AttributeSet cc_afd;
  std::vector<int> fd_targets;
  std::vector<int> afd_targets;
  /// Per-group presence: whether every (L-1)-subset survived for the
  /// group, i.e. whether this node is part of the group's standalone
  /// lattice. Consumed by the merge's liveness rules.
  bool od_present = false;
  bool fd_present = false;
  bool afd_present = false;
  /// First slot of this node's candidates in the level's flattened
  /// candidate array; OFDs first, then OCs, then FDs, then AFDs (the
  /// OFD/OC prefix keeps default-kind slot layout identical to the
  /// pre-multi-kind wire).
  size_t first_slot = 0;
  uint8_t planned = 0;
};

/// One validation unit — the grain of parallelism. A single node may
/// contribute hundreds of these; flattening them across the level lets
/// the work-stealing loop balance them individually, so one huge node no
/// longer stalls a whole chunk of nodes.
struct Candidate {
  DependencyKind kind = DependencyKind::kOc;
  AttributeSet context;
  /// RHS attribute for the target kinds (kOfd/kFd/kAfd).
  int target = -1;
  AttributePair oc_pair;
};

/// Outcome slot, written exclusively by the worker that claimed the
/// candidate and read only after the phase join.
struct CandidateOutcome {
  ValidationOutcome outcome;
  double interestingness = 0.0;
  /// CPU time of this one validation (merged into the summed-CPU stats).
  double seconds = 0.0;
  uint8_t done = 0;
};

/// Run state threaded through the level loop. Each level goes through
/// three phases on the (optional) thread pool:
///
///   1. plan      — per node: candidate sets from the level below
///   2. validate  — per candidate: the fine-grained parallel unit
///   3. merge     — serial, in sorted key order: deterministic output
///
/// Next-level context partitions are *prefetched*, not phase-built: as a
/// node survives the merge, its partition starts deriving on the pool
/// (fire-and-forget TaskGroup task), so partition work overlaps the rest
/// of the merge and the next level's planning instead of sitting behind
/// a materialize barrier. Validators that reach a partition before its
/// prefetch finishes block on the cache's once-per-key future.
///
/// Workers in phases 1/2 and the prefetch tasks read shared state
/// (`previous`, the cache) and write only their own plan/outcome slot;
/// the merge alone mutates the lattice and the result. Combined with the
/// cache's canonical partition values and deterministic derivation plans
/// (published catalog, see partition_cache.h) this makes the dependency
/// lists and every non-timing counter bit-identical for any thread
/// count.
struct Driver {
  const EncodedTable& table;
  const DiscoveryOptions& options;
  /// The enabled kind set; the OD group (the original cc/cs machinery)
  /// covers kOc and kOfd jointly.
  DependencyKindSet kinds;
  bool oc_enabled;
  bool ofd_enabled;
  bool fd_enabled;
  bool afd_enabled;
  double epsilon;
  PartitionCache cache;
  DiscoveryResult result;
  Stopwatch total_clock;
  std::atomic<bool> deadline_hit{false};
  std::atomic<bool> cancel_hit{false};

  std::unique_ptr<AocSampler> sampler;
  /// Pool the run executes on: borrowed from options.pool, created for
  /// the run when only num_threads is set, or null for a serial run.
  std::unique_ptr<exec::ThreadPool> owned_pool;
  exec::ThreadPool* pool = nullptr;
  std::atomic<int64_t> partition_nanos{0};
  /// Fire-and-forget prefetch of next-level context partitions, forked
  /// during the merge. Declared after the pool members so it joins before
  /// the pool dies; the driver also waits explicitly before budget
  /// eviction (which needs a quiescent cache) and before final stats.
  std::unique_ptr<exec::TaskGroup> prefetch_group;
  /// Survivors of the previous level, in merge (= sorted key) order;
  /// their realized costs are published to the planner catalog at the
  /// next level's merge start.
  std::vector<AttributeSet> pending_costs;
  /// Sharded validation (options.num_shards >= 1): candidate batches go
  /// out and results come back over the CSR wire format via the selected
  /// transport; the driver's own cache, sampler and prefetch pipeline
  /// sit idle — partitions live shard-side. Null in unsharded runs and
  /// when coordinator setup failed (coordinator_status says why).
  std::unique_ptr<shard::ShardCoordinator> coordinator;
  Status coordinator_status;
  /// Row-shard phase products (options.row_shards >= 1): the stitched
  /// base partitions, bit-identical to FromColumn, consumed by the
  /// unsharded preload (moved out) or the candidate-space coordinator's
  /// bootstrap (borrowed for the encode, then dropped). Empty after
  /// consumption, or when the phase failed — row_shard_status says why,
  /// and Run() aborts with it as DiscoveryResult::shard_status.
  std::vector<StrippedPartition> row_bases;
  Status row_shard_status;

  /// Validator scratch is pooled like PartitionScratch: a worker borrows
  /// one instance per validation task, so steady-state validation does no
  /// heap allocation regardless of class count or candidate count.
  std::mutex vscratch_mutex;
  std::vector<std::unique_ptr<ValidatorScratch>> free_vscratch;

  Driver(const EncodedTable& t, const DiscoveryOptions& o)
      : table(t),
        options(o),
        kinds(o.kinds),
        oc_enabled(o.kinds.Contains(DependencyKind::kOc)),
        ofd_enabled(o.kinds.Contains(DependencyKind::kOfd)),
        fd_enabled(o.kinds.Contains(DependencyKind::kFd)),
        afd_enabled(o.kinds.Contains(DependencyKind::kAfd)),
        epsilon(o.validator == ValidatorKind::kExact ? 0.0 : o.epsilon),
        cache(&t, PartitionCache::DeferBasePartitions{}) {
    // Base partitions are built exactly once per run: into this cache
    // for unsharded validation, or by the coordinator (which ships them
    // to the shard caches) when sharding is on — the driver cache then
    // stays empty rather than holding a dead copy of the base footprint.
    // A warm provider (resident service, same table fingerprint) swaps
    // the per-column sort for a copy of an already-canonical value.
    // Row-space sharding runs first: the stitched bases then stand in
    // for FromColumn everywhere below. The phase is fail-stop — on any
    // transport or decode error Run() aborts before the traversal with
    // the typed status, so a half-stitched base can never be used.
    if (options.row_shards >= 1) {
      shard::ShardTransportOptions rtopts;
      rtopts.transport = options.shard_transport;
      rtopts.runner_path = options.shard_runner_path;
      rtopts.io_timeout_seconds = options.shard_io_timeout_seconds;
      shard::RowShardStats rstats;
      Result<std::vector<StrippedPartition>> bases =
          shard::ComputeRowShardedBases(table, options.row_shards, rtopts,
                                        options.shard_wire_compression,
                                        &rstats);
      result.stats.row_shards_used = options.row_shards;
      result.stats.row_shard_bytes_per_shard =
          std::move(rstats.table_bytes_per_shard);
      result.stats.row_shard_bytes_shipped = rstats.bytes_shipped_total;
      result.stats.row_shard_bytes_raw =
          rstats.slice_counts.raw + rstats.fragment_counts.raw;
      result.stats.row_shard_bytes_wire =
          rstats.slice_counts.wire + rstats.fragment_counts.wire;
      if (bases.ok()) {
        row_bases = std::move(bases).value();
      } else {
        row_shard_status = bases.status();
      }
    }
    if (options.num_shards < 1 && row_shard_status.ok()) {
      const auto* warm = options.warm_base_partitions;
      const bool have_row =
          static_cast<int>(row_bases.size()) == table.num_columns();
      for (int a = 0; a < table.num_columns(); ++a) {
        const bool have_warm = warm != nullptr &&
                               static_cast<size_t>(a) < warm->size() &&
                               (*warm)[static_cast<size_t>(a)] != nullptr;
        cache.Preload(
            AttributeSet().With(a),
            have_row
                ? std::move(row_bases[static_cast<size_t>(a)])
                : (have_warm
                       ? StrippedPartition(*(*warm)[static_cast<size_t>(a)])
                       : StrippedPartition::FromColumn(table.column(a))));
      }
      row_bases.clear();
    }
    if (options.enable_sampling_filter &&
        options.validator == ValidatorKind::kOptimal &&
        options.num_shards < 1) {
      // With sharding each runner owns an identically seeded sampler; a
      // coordinator-side instance would never be consulted.
      sampler = std::make_unique<AocSampler>(&table, options.sampler_config);
    }
    int threads = options.num_threads == 0
                      ? exec::ThreadPool::HardwareConcurrency()
                      : std::max(1, options.num_threads);
    if (options.pool != nullptr) {
      pool = options.pool;
      threads = std::max(1, pool->num_workers());
    } else if (threads > 1) {
      owned_pool = std::make_unique<exec::ThreadPool>(threads);
      pool = owned_pool.get();
    }
    prefetch_group = std::make_unique<exec::TaskGroup>(pool);
    cache.set_planner_enabled(options.enable_derivation_planner);
    result.stats.threads_used = threads;
    if (options.num_shards >= 1) {
      shard::ShardRunnerOptions ropts;
      ropts.validator = options.validator;
      ropts.epsilon = options.epsilon;
      ropts.kinds = options.kinds;
      ropts.afd_error = options.afd_error;
      ropts.collect_removal_sets = options.collect_removal_sets;
      ropts.enable_sampling_filter = options.enable_sampling_filter;
      ropts.sampler_config = options.sampler_config;
      ropts.partition_memory_budget_bytes =
          options.partition_memory_budget_bytes;
      ropts.wire_compression = options.shard_wire_compression;
      shard::ShardTransportOptions topts;
      topts.transport = options.shard_transport;
      topts.runner_path = options.shard_runner_path;
      topts.io_timeout_seconds = options.shard_io_timeout_seconds;
      topts.channel_decorator = options.shard_channel_decorator;
      topts.supervision.max_retries = options.shard_max_retries;
      topts.supervision.retry_backoff_ms = options.shard_retry_backoff_ms;
      topts.supervision.speculation_factor =
          options.shard_speculation_factor;
      topts.supervision.fallback_inproc = options.shard_fallback_inproc;
      if (options.time_budget_seconds > 0) {
        // Clamp every shard-seam wait (and backoff park) to the run
        // budget: a dead runner costs at most the remaining budget, not
        // the full I/O timeout.
        topts.supervision.run_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(options.time_budget_seconds));
      }
      if (row_shard_status.ok()) {
        Result<std::unique_ptr<shard::ShardCoordinator>> created =
            shard::ShardCoordinator::Create(
                &table, options.num_shards, ropts, topts, pool,
                row_bases.empty() ? nullptr : &row_bases);
        if (created.ok()) {
          coordinator = std::move(created).value();
        } else {
          coordinator_status = created.status();
        }
        // The bootstrap frames are encoded; the stitched copies are dead.
        row_bases.clear();
      }
      result.stats.shards_used = options.num_shards;
    }
  }

  /// Deadline flag ordering audit: relaxed suffices on both sides. The
  /// flag is monotonic (set once, never cleared) and guards no data — a
  /// reader that sees a stale `false` merely starts one more candidate,
  /// and a reader seeing `true` only *skips* work. The outcomes the merge
  /// does consume are published by ParallelFor's / the shard TaskGroup's
  /// internal join, not by this flag, so no acquire/release pairing is
  /// needed here.
  bool OverBudget() {
    if (options.time_budget_seconds > 0.0 &&
        total_clock.ElapsedSeconds() > options.time_budget_seconds) {
      deadline_hit.store(true, std::memory_order_relaxed);
    }
    // External cancellation shares the deadline's seams and wind-down
    // path exactly; cancel_hit only adds who-pulled-the-trigger
    // attribution (DiscoveryResult::cancelled). The callback is polled
    // from worker threads, so it must be thread-safe (documented on the
    // option).
    if (options.cancel && !cancel_hit.load(std::memory_order_relaxed) &&
        options.cancel()) {
      cancel_hit.store(true, std::memory_order_relaxed);
      deadline_hit.store(true, std::memory_order_relaxed);
    }
    return deadline_hit.load(std::memory_order_relaxed);
  }

  exec::ParallelForOptions PhaseOptions(int64_t grain = 1) {
    exec::ParallelForOptions opts;
    opts.grain = grain;
    opts.cancel = [this] { return OverBudget(); };
    return opts;
  }

  /// Context partition lookup. Contexts were eagerly materialized while
  /// processing the level below, so this is normally a pure cache hit;
  /// Get() stays safe (and value-deterministic) either way.
  std::shared_ptr<const StrippedPartition> Lookup(AttributeSet set) {
    return cache.Get(set);
  }

  std::unique_ptr<ValidatorScratch> AcquireValidatorScratch() {
    {
      std::lock_guard<std::mutex> lock(vscratch_mutex);
      if (!free_vscratch.empty()) {
        std::unique_ptr<ValidatorScratch> scratch =
            std::move(free_vscratch.back());
        free_vscratch.pop_back();
        return scratch;
      }
    }
    return std::make_unique<ValidatorScratch>();
  }

  void ReleaseValidatorScratch(std::unique_ptr<ValidatorScratch> scratch) {
    std::lock_guard<std::mutex> lock(vscratch_mutex);
    free_vscratch.push_back(std::move(scratch));
  }

  /// Phase 1 (parallel over nodes): candidate generation against the
  /// completed level below. Pure function of `previous`.
  NodePlan PlanNode(AttributeSet x, const LatticeLevel& previous) {
    NodePlan plan;
    plan.planned = 1;
    const int level = x.size();

    // Per-group candidate-set intersections (C+(X) = ∩_{A∈X} C+(X\{A}))
    // and per-group presence against the completed level below. A group
    // participates at X only when every (L-1)-subset is alive *for that
    // group* — each enabled group thereby walks exactly its standalone
    // lattice, so enabling one kind never perturbs another kind's
    // results (a node kept alive by the FD group alone generates no
    // extra OC/OFD candidates, and vice versa).
    const bool od_enabled = oc_enabled || ofd_enabled;
    bool od_present = od_enabled;
    bool fd_present = fd_enabled;
    bool afd_present = afd_enabled;
    AttributeSet cc = AttributeSet::FullSet(table.num_columns());
    AttributeSet cc_fd = cc;
    AttributeSet cc_afd = cc;
    x.ForEach([&](int a) {
      const LatticeNode* sub = previous.Find(x.Without(a));
      AOD_CHECK_MSG(sub != nullptr, "missing subset node at level %d",
                    level - 1);
      od_present = od_present && sub->od_alive;
      fd_present = fd_present && sub->fd_alive;
      afd_present = afd_present && sub->afd_alive;
      cc = cc.Intersect(sub->cc);
      cc_fd = cc_fd.Intersect(sub->cc_fd);
      cc_afd = cc_afd.Intersect(sub->cc_afd);
    });
    plan.cc = cc;
    plan.cc_fd = cc_fd;
    plan.cc_afd = cc_afd;
    plan.od_present = od_present;
    plan.fd_present = fd_present;
    plan.afd_present = afd_present;

    // max_lhs_arity bounds the *context* size of emitted candidates: a
    // target-kind candidate (OFD/FD/AFD) at this level has |context| =
    // level-1, an OC has level-2. Everything below the cutoff is
    // generated (and pruned, and merged) exactly as in the unbounded
    // run, which is what makes the bounded result a prefix-consistent
    // subset. The bound is uniform across kinds.
    const int arity_bound = options.max_lhs_arity;
    const bool target_arity_ok = arity_bound == 0 || level - 1 <= arity_bound;

    // OFD candidates: A ∈ X ∩ C_c+(X), validated in context X\{A}.
    if (od_present && ofd_enabled && target_arity_ok) {
      x.Intersect(cc).ForEach([&](int a) { plan.ofd_targets.push_back(a); });
    }

    // OC candidates, in both polarities when requested.
    if (od_present && oc_enabled && level >= 2 &&
        (arity_bound == 0 || level - 2 <= arity_bound)) {
      std::vector<int> attrs = x.ToVector();
      for (size_t i = 0; i < attrs.size(); ++i) {
        for (size_t j = i + 1; j < attrs.size(); ++j) {
          for (int polarity = 0; polarity < (options.bidirectional ? 2 : 1);
               ++polarity) {
            AttributePair pair =
                AttributePair::Of(attrs[i], attrs[j], polarity == 1);
            // C_s+(X): the candidate must have survived in every subset
            // lacking one other attribute.
            bool inherited = true;
            if (level >= 3) {
              x.ForEach([&](int c) {
                if (c == pair.a || c == pair.b || !inherited) return;
                const LatticeNode* sub = previous.Find(x.Without(c));
                AOD_CHECK(sub != nullptr);
                if (!std::binary_search(sub->cs.begin(), sub->cs.end(),
                                        pair)) {
                  inherited = false;
                }
              });
            }
            if (!inherited) continue;

            // FASTOD's constancy-based pruning: drop {A,B} when
            // A ∉ C_c+(X\{B}) or B ∉ C_c+(X\{A}) — some OFD in the
            // context makes this OC candidate trivially true or redundant
            // with a smaller-context candidate. Constancy trivializes
            // both polarities alike.
            const LatticeNode* sub_b = previous.Find(x.Without(pair.b));
            const LatticeNode* sub_a = previous.Find(x.Without(pair.a));
            AOD_CHECK(sub_a != nullptr && sub_b != nullptr);
            if (!sub_b->cc.Contains(pair.a) || !sub_a->cc.Contains(pair.b)) {
              ++plan.oc_pruned;
              continue;
            }
            plan.oc_pairs.push_back(pair);
          }
        }
      }
    }

    // FD / AFD candidates: the same target shape as OFDs (A ∈ X against
    // the group's own TANE candidate set, validated in context X\{A}).
    if (fd_present && target_arity_ok) {
      x.Intersect(cc_fd).ForEach([&](int a) { plan.fd_targets.push_back(a); });
    }
    if (afd_present && target_arity_ok) {
      x.Intersect(cc_afd).ForEach(
          [&](int a) { plan.afd_targets.push_back(a); });
    }
    return plan;
  }

  /// Phase 2 (parallel over candidates): one validation through the
  /// kind-keyed registry, writing only its own outcome slot.
  void ValidateCandidate(const Candidate& c, CandidateOutcome* out) {
    auto partition = Lookup(c.context);
    std::unique_ptr<ValidatorScratch> scratch = AcquireValidatorScratch();

    ValidationRequest request;
    request.table = &table;
    request.context_partition = partition.get();
    request.kind = c.kind;
    request.target = c.target;
    request.pair = c.oc_pair;
    request.algorithm = options.validator;
    request.epsilon = epsilon;
    request.afd_error = options.afd_error;
    request.table_rows = table.num_rows();
    request.options.collect_removal_set = options.collect_removal_sets;
    request.sampler = sampler.get();
    request.scratch = scratch.get();

    Stopwatch sw;
    DependencyVerdict verdict = ValidateDependency(request);
    out->outcome.valid = verdict.valid;
    out->outcome.approx_factor = verdict.error;
    out->outcome.removal_size = verdict.removal_size;
    out->outcome.early_exit = verdict.early_exit;
    out->outcome.removal_rows = std::move(verdict.removal_rows);
    out->seconds = sw.ElapsedSeconds();
    ReleaseValidatorScratch(std::move(scratch));
    out->interestingness =
        InterestingnessScore(*partition, c.context.size(), table.num_rows());
    out->done = 1;
  }

  /// Phase 3 (serial, sorted key order): folds one node's outcomes into
  /// the lattice node and the result — the only place shared state is
  /// mutated, so output order never depends on scheduling.
  void MergeNode(const AttributeSet x, const NodePlan& plan,
                 const std::vector<Candidate>& candidates,
                 std::vector<CandidateOutcome>& outcomes,
                 LatticeLevel* current) {
    const int level = x.size();
    LatticeNode* node = current->Find(x);
    node->cc = plan.cc;
    node->cs.clear();
    node->cc_fd = plan.cc_fd;
    node->cc_afd = plan.cc_afd;
    result.stats.oc_candidates_pruned += plan.oc_pruned;

    auto record = [&](DependencyKind kind, const Candidate& c,
                      CandidateOutcome& out) {
      DiscoveredDependency found;
      found.kind = kind;
      found.context = c.context;
      if (kind == DependencyKind::kOc) {
        found.a = c.oc_pair.a;
        found.b = c.oc_pair.b;
        found.opposite = c.oc_pair.opposite;
      } else {
        found.a = c.target;
      }
      found.error = out.outcome.approx_factor;
      found.removal_size = out.outcome.removal_size;
      found.level = level;
      found.interestingness = out.interestingness;
      found.removal_rows = std::move(out.outcome.removal_rows);
      result.dependencies.push_back(std::move(found));
    };

    size_t slot = plan.first_slot;
    for (size_t t = 0; t < plan.ofd_targets.size(); ++t, ++slot) {
      const int a = plan.ofd_targets[t];
      CandidateOutcome& out = outcomes[slot];
      result.stats.ofd_validation_seconds += out.seconds;
      ++result.stats.ofd_candidates_validated;
      if (!out.outcome.valid) continue;

      result.stats.RecordOfdAtLevel(level);
      record(DependencyKind::kOfd, candidates[slot], out);
      // TANE minimality pruning: the found OFD makes X\{A} -> A minimal;
      // any superset restatement is redundant, as is any target outside
      // X (it would have X\{A} -> A as a sub-dependency).
      node->cc = node->cc.Without(a).Intersect(x);
      node->constant_here = node->constant_here.With(a);
    }

    for (size_t t = 0; t < plan.oc_pairs.size(); ++t, ++slot) {
      const AttributePair pair = plan.oc_pairs[t];
      CandidateOutcome& out = outcomes[slot];
      result.stats.oc_validation_seconds += out.seconds;
      ++result.stats.oc_candidates_validated;
      if (out.outcome.valid) {
        result.stats.RecordOcAtLevel(level);
        record(DependencyKind::kOc, candidates[slot], out);
      } else {
        // Still open: candidates propagate upward only while invalid.
        node->cs.push_back(pair);
      }
    }
    std::sort(node->cs.begin(), node->cs.end());

    for (size_t t = 0; t < plan.fd_targets.size(); ++t, ++slot) {
      const int a = plan.fd_targets[t];
      CandidateOutcome& out = outcomes[slot];
      result.stats.fd_validation_seconds += out.seconds;
      ++result.stats.fd_candidates_validated;
      if (!out.outcome.valid) continue;
      result.stats.RecordFdAtLevel(level);
      record(DependencyKind::kFd, candidates[slot], out);
      // The same TANE rule, against the FD group's own candidate set.
      node->cc_fd = node->cc_fd.Without(a).Intersect(x);
    }

    for (size_t t = 0; t < plan.afd_targets.size(); ++t, ++slot) {
      const int a = plan.afd_targets[t];
      CandidateOutcome& out = outcomes[slot];
      result.stats.afd_validation_seconds += out.seconds;
      ++result.stats.afd_candidates_validated;
      if (!out.outcome.valid) continue;
      result.stats.RecordAfdAtLevel(level);
      record(DependencyKind::kAfd, candidates[slot], out);
      // Sound for AFDs because g1 is monotone non-increasing in the LHS:
      // every superset restatement of a valid AFD is valid, hence
      // redundant.
      node->cc_afd = node->cc_afd.Without(a).Intersect(x);
    }

    // Per-group liveness. The OD group keeps the original rule when both
    // OD kinds run; with one of them disabled the rule degenerates to
    // what that kind alone can still discover upward (OC candidates
    // propagate only while open; level-1 nodes must survive for the
    // first OC pairs to exist at level 2).
    if (oc_enabled && ofd_enabled) {
      node->od_alive =
          plan.od_present && !(node->cc.empty() && node->cs.empty());
    } else if (ofd_enabled) {
      node->od_alive = plan.od_present && !node->cc.empty();
    } else if (oc_enabled) {
      node->od_alive = plan.od_present && (level == 1 || !node->cs.empty());
    } else {
      node->od_alive = false;
    }
    node->fd_alive = plan.fd_present && !node->cc_fd.empty();
    node->afd_alive = plan.afd_present && !node->cc_afd.empty();

    // Node deletion: nothing left for any enabled group to find through
    // X or any superset.
    if (!node->od_alive && !node->fd_alive && !node->afd_alive) {
      current->Erase(x);
    }
  }

  void Run() {
    if (!row_shard_status.ok()) {
      // The row-shard phase failed before any base existed: typed
      // fail-stop, same contract as a coordinator setup failure.
      result.shard_status = row_shard_status;
      result.stats.total_seconds = total_clock.ElapsedSeconds();
      return;
    }
    if (options.num_shards >= 1 && coordinator == nullptr) {
      // Coordinator setup failed (bad runner path, spawn or connect
      // error): a typed result, not a crash — nothing ran, so the empty
      // result is the complete merge of zero levels.
      result.shard_status = coordinator_status;
      result.stats.total_seconds = total_clock.ElapsedSeconds();
      return;
    }
    const int k = table.num_columns();

    // Virtual level 0: the empty set with C+(∅) = R for every group
    // (the LatticeNode defaults leave all groups alive).
    LatticeLevel previous(0);
    {
      LatticeNode root;
      root.cc = AttributeSet::FullSet(k);
      root.cc_fd = root.cc;
      root.cc_afd = root.cc;
      previous.Insert(std::move(root));
    }

    LatticeLevel current = LatticeLevel::MakeFirstLevel(k);
    while (!current.empty()) {
      const int level = current.level();
      // Node/level totals are recorded after the merge, per *merged*
      // node: a deadline can interrupt a level anywhere, and stats
      // counted at level entry would then claim nodes (and a level) the
      // reported result set never saw.
      AOD_LOG(kInfo) << "level " << level << ": " << current.size()
                     << " nodes, " << result.stats.TotalOcs() << " OCs so far";

      // Deterministic node order: sort keys by bit pattern.
      std::vector<AttributeSet> keys;
      keys.reserve(static_cast<size_t>(current.size()));
      for (const auto& [set, node] : current.nodes()) keys.push_back(set);
      std::sort(keys.begin(), keys.end());

      // Phase 1: plan every node against the completed level below.
      // Planning only reads `previous`, so nodes are independent; the
      // grain amortizes task overhead over the cheap per-node work.
      std::vector<NodePlan> plans(keys.size());
      Stopwatch phase_clock;
      exec::ParallelFor(
          pool, 0, static_cast<int64_t>(keys.size()),
          [&](int64_t i) {
            plans[static_cast<size_t>(i)] =
                PlanNode(keys[static_cast<size_t>(i)], previous);
          },
          PhaseOptions(/*grain=*/8));

      // Flatten candidates in deterministic (key, slot) order.
      std::vector<Candidate> candidates;
      bool planned_all = true;
      for (size_t i = 0; i < keys.size(); ++i) {
        NodePlan& plan = plans[i];
        if (!plan.planned) {
          planned_all = false;
          break;
        }
        plan.first_slot = candidates.size();
        const AttributeSet x = keys[i];
        // Slot order per node: OFDs, OCs, then FDs, AFDs — the OFD/OC
        // prefix keeps the default-kind candidate layout (and thus the
        // shard wire) identical to the pre-multi-kind driver.
        for (int a : plan.ofd_targets) {
          Candidate c;
          c.kind = DependencyKind::kOfd;
          c.context = x.Without(a);
          c.target = a;
          candidates.push_back(c);
        }
        for (AttributePair pair : plan.oc_pairs) {
          Candidate c;
          c.context = x.Without(pair.a).Without(pair.b);
          c.oc_pair = pair;
          candidates.push_back(c);
        }
        for (int a : plan.fd_targets) {
          Candidate c;
          c.kind = DependencyKind::kFd;
          c.context = x.Without(a);
          c.target = a;
          candidates.push_back(c);
        }
        for (int a : plan.afd_targets) {
          Candidate c;
          c.kind = DependencyKind::kAfd;
          c.context = x.Without(a);
          c.target = a;
          candidates.push_back(c);
        }
      }
      result.stats.candidate_wall_seconds += phase_clock.ElapsedSeconds();
      if (!planned_all) {
        result.timed_out = true;
        break;
      }

      // Phase 2: validate all candidates of the level — as individually
      // stealable tasks in-process, or shipped out as per-shard batches
      // over the wire when sharding is on. Either way the deadline is
      // checked between candidates and each outcome slot is written by
      // exactly one producer.
      std::vector<CandidateOutcome> outcomes(candidates.size());
      phase_clock.Restart();
      if (coordinator != nullptr) {
        std::vector<shard::WireCandidate> wire;
        wire.reserve(candidates.size());
        for (size_t s = 0; s < candidates.size(); ++s) {
          const Candidate& c = candidates[s];
          shard::WireCandidate w;
          w.slot = s;
          w.context_bits = c.context.bits();
          w.kind = c.kind;
          w.target = c.target;
          w.pair_a = c.oc_pair.a;
          w.pair_b = c.oc_pair.b;
          w.opposite = c.oc_pair.opposite;
          wire.push_back(w);
        }
        // Receive-overlapped folding: outcomes land in their slots as
        // each result chunk decodes, while later shards' bytes are still
        // in flight — the slot keys are deterministic, so fold order
        // never affects the merge below. Slots come from (possibly
        // separate-process) runners, so they cross a trust boundary: a
        // skewed or misbehaving runner must yield a typed abort, not a
        // CHECK crash.
        Status fold_status;
        Status st = coordinator->ValidateBatch(
            wire, [this] { return OverBudget(); },
            [&](shard::WireOutcome o) {
              if (o.slot >= outcomes.size()) {
                if (fold_status.ok()) {
                  fold_status = Status::InvalidArgument(
                      "shard result slot " + std::to_string(o.slot) +
                      " outside the level's " +
                      std::to_string(outcomes.size()) + " candidates");
                }
                return;
              }
              // The outcome echoes its candidate's kind; a mismatch means
              // the runner validated something else than what was asked —
              // a typed abort, like any other wire corruption.
              if (o.kind != candidates[static_cast<size_t>(o.slot)].kind) {
                if (fold_status.ok()) {
                  fold_status = Status::InvalidArgument(
                      std::string("shard result slot ") +
                      std::to_string(o.slot) + " echoes kind '" +
                      DependencyKindToString(o.kind) + "' for a '" +
                      DependencyKindToString(
                          candidates[static_cast<size_t>(o.slot)].kind) +
                      "' candidate");
                }
                return;
              }
              CandidateOutcome& out = outcomes[static_cast<size_t>(o.slot)];
              out.outcome.valid = o.valid;
              out.outcome.early_exit = o.early_exit;
              out.outcome.removal_size = o.removal_size;
              out.outcome.approx_factor = o.approx_factor;
              out.outcome.removal_rows = std::move(o.removal_rows);
              out.interestingness = o.interestingness;
              out.seconds = o.seconds;
              out.done = 1;
            });
        if (st.ok() && !fold_status.ok()) st = fold_status;
        if (!st.ok()) {
          // A transport fault (runner died, corrupted frame, timeout)
          // aborts the run with a typed status. The failed level is
          // never merged — the break below skips MergeNode, discarding
          // whatever slots folded before the fault — so the reported
          // lists are the complete merge of the finished prefix, never
          // a partially merged level.
          result.shard_status = std::move(st);
          result.stats.validation_wall_seconds += phase_clock.ElapsedSeconds();
          break;
        }
      } else {
        exec::ParallelFor(
            pool, 0, static_cast<int64_t>(candidates.size()),
            [&](int64_t i) {
              ValidateCandidate(candidates[static_cast<size_t>(i)],
                                &outcomes[static_cast<size_t>(i)]);
            },
            PhaseOptions());
      }
      result.stats.validation_wall_seconds += phase_clock.ElapsedSeconds();

      // Publish the completed level's partition costs to the planner
      // catalog before any derivation of this level's survivors is
      // planned. PublishCost resolves each partition (blocking on the
      // rare prefetch straggler), so the catalog — and every plan made
      // from it below — is a deterministic function of the traversal,
      // not of scheduling. Skipped once the deadline is hit: the catalog
      // no longer matters and publishing could trigger derivations.
      phase_clock.Restart();
      if (options.enable_derivation_planner && coordinator == nullptr &&
          !OverBudget()) {
        for (AttributeSet key : pending_costs) cache.PublishCost(key);
      }
      pending_costs.clear();
      result.stats.partition_wall_seconds += phase_clock.ElapsedSeconds();

      // With a bounded LHS arity m the last candidates are the OC pairs
      // of level m+2 (context size m); levels past that emit nothing.
      const bool expect_next_level =
          (options.max_level == 0 || level < options.max_level) &&
          (options.max_lhs_arity == 0 || level < options.max_lhs_arity + 2) &&
          level < k;

      // Phase 3: serial merge in key order. Stop at the first node with
      // an unfinished candidate — everything before it is a complete,
      // deterministic prefix of the traversal. As each node survives,
      // its partition — a context for the next level's validation —
      // starts deriving on the pool immediately (the old materialize
      // barrier is now a prefetch pipeline overlapping the rest of the
      // merge and the next level's planning). Plans are computed here,
      // serially against the just-published catalog, and handed to the
      // tasks, so in-flight tasks never read planner state.
      phase_clock.Restart();
      int64_t merged_nodes = 0;
      for (size_t i = 0; i < keys.size(); ++i) {
        const NodePlan& plan = plans[i];
        const size_t total = plan.ofd_targets.size() + plan.oc_pairs.size() +
                             plan.fd_targets.size() + plan.afd_targets.size();
        bool complete = true;
        for (size_t s = 0; s < total; ++s) {
          if (!outcomes[plan.first_slot + s].done) {
            complete = false;
            break;
          }
        }
        if (!complete) {
          result.timed_out = true;
          break;
        }
        MergeNode(keys[i], plan, candidates, outcomes, &current);
        ++merged_nodes;
        // Level-1 partitions are preloaded; prefetch only derived levels.
        // With sharding the coordinator-side cache is idle — contexts are
        // derived by the shard that validates them — so there is nothing
        // to prefetch or to cost-publish.
        if (coordinator == nullptr && expect_next_level && level >= 2 &&
            current.Find(keys[i]) != nullptr) {
          const AttributeSet key = keys[i];
          pending_costs.push_back(key);
          DerivationPlan derivation;
          const bool planned = options.enable_derivation_planner;
          if (planned) derivation = cache.PlanDerivation(key);
          prefetch_group->Run(
              [this, key, derivation = std::move(derivation), planned] {
                if (OverBudget()) return;
                Stopwatch sw;
                cache.Get(key, planned ? &derivation : nullptr);
                partition_nanos.fetch_add(sw.ElapsedNanos(),
                                          std::memory_order_relaxed);
              });
        }
      }
      result.stats.merge_wall_seconds += phase_clock.ElapsedSeconds();
      // Deadline-coherent totals: only merged nodes — the ones whose
      // candidates and dependencies the result actually reports — are
      // counted, and a level (or a whole run) that merged nothing leaves
      // the totals at the last completed state.
      if (merged_nodes > 0) {
        result.stats.levels_processed = level;
        result.stats.RecordNodesAtLevel(level, merged_nodes);
        result.stats.nodes_processed += merged_nodes;
        if (options.progress) {
          DiscoveryProgress progress;
          progress.level = level;
          progress.nodes_merged = merged_nodes;
          progress.total_ocs = result.stats.TotalOcs();
          progress.total_ofds = result.stats.TotalOfds();
          progress.total_fds = result.stats.TotalFds();
          progress.total_afds = result.stats.TotalAfds();
          options.progress(progress);
        }
      }
      if (result.timed_out) break;
      if (!expect_next_level) break;

      // Budget enforcement needs a quiescent cache (every future
      // resolved), so it pays one synchronization with the prefetch
      // pipeline; without a budget the pipeline runs uninterrupted into
      // the next level and the peak sample is merely a racy lower bound
      // (the end-of-run sample is exact).
      if (coordinator != nullptr) {
        // Shard caches enforce their own budgets batch by batch and
        // sample their own residency peaks; both fold in from the stats
        // footers at Finish — the coordinator has no object access to a
        // remote cache, so there is nothing to sample here.
      } else if (options.partition_memory_budget_bytes > 0) {
        phase_clock.Restart();
        prefetch_group->Wait();
        result.stats.partition_wall_seconds += phase_clock.ElapsedSeconds();
        result.stats.partition_bytes_peak = std::max(
            result.stats.partition_bytes_peak, cache.bytes_resident());
        result.stats.partition_bytes_evicted +=
            cache.EnforceBudget(options.partition_memory_budget_bytes);
      } else {
        result.stats.partition_bytes_peak = std::max(
            result.stats.partition_bytes_peak, cache.bytes_resident());
      }

      LatticeLevel next = current.GenerateNext();
      previous = std::move(current);
      current = std::move(next);
    }

    {
      Stopwatch wait_clock;
      prefetch_group->Wait();
      result.stats.partition_wall_seconds += wait_clock.ElapsedSeconds();
    }
    result.stats.partition_seconds =
        static_cast<double>(partition_nanos.load(std::memory_order_relaxed)) /
        1e9;
    if (coordinator != nullptr) {
      // The shutdown handshake: every shard answers with its stats
      // footer, the single mechanism partition-side counters cross the
      // seam by — in-process and remote runners alike. The planner
      // counters stay 0 (shards derive by the fixed rule).
      Status finish = coordinator->Finish();
      if (result.shard_status.ok() && !finish.ok()) {
        result.shard_status = std::move(finish);
      }
      result.stats.partition_seconds = coordinator->partition_seconds();
      result.stats.partitions_computed = coordinator->products_computed();
      result.stats.partitions_evicted = coordinator->partitions_evicted();
      result.stats.partition_bytes_evicted =
          coordinator->partition_bytes_evicted();
      result.stats.partition_bytes_peak =
          std::max(result.stats.partition_bytes_peak,
                   coordinator->partition_bytes_peak());
      result.stats.partition_bytes_final = coordinator->partition_bytes_final();
      result.stats.shard_bytes_shipped = coordinator->bytes_shipped_total();
      result.stats.shard_bytes_per_shard.resize(
          static_cast<size_t>(coordinator->num_shards()));
      for (int s = 0; s < coordinator->num_shards(); ++s) {
        result.stats.shard_bytes_per_shard[static_cast<size_t>(s)] =
            coordinator->bytes_shipped(s);
      }
      // Codec accounting: what crossed the wire vs. what the same run
      // would have shipped all-raw (footer-folded decode counts plus the
      // coordinator's own encode/decode sites). bytes_raw_total() needs
      // the footers, so this must come after Finish().
      result.stats.shard_bytes_wire = coordinator->bytes_shipped_total();
      result.stats.shard_bytes_raw = coordinator->bytes_raw_total();
      const std::pair<shard::FrameType, const char*> kTypeNames[] = {
          {shard::FrameType::kPartitionBlock, "partition"},
          {shard::FrameType::kCandidateBatch, "candidate"},
          {shard::FrameType::kResultBatch, "result"},
          {shard::FrameType::kTableBlock, "table"},
      };
      for (const auto& [type, name] : kTypeNames) {
        const shard::CodecByteCounts counts =
            coordinator->type_byte_counts(type);
        if (counts.raw == 0 && counts.wire == 0) continue;
        result.stats.shard_frame_bytes.push_back(
            {name, counts.raw, counts.wire});
      }
      // Supervision observability: every recovery the run survived.
      result.stats.shard_retries = coordinator->shard_retries();
      result.stats.shard_respawns = coordinator->shard_respawns();
      result.stats.shard_speculative_wins = coordinator->speculative_wins();
      result.stats.shard_speculative_losses =
          coordinator->speculative_losses();
      result.stats.shard_fallback_shards = coordinator->fallback_shards();
      result.stats.shard_footers_missing = coordinator->footers_missing();
    } else {
      result.stats.partitions_computed = cache.products_computed();
      result.stats.planner_derivations = cache.planner_derivations();
      result.stats.planner_cost_estimated = cache.planner_cost_estimated();
      result.stats.planner_cost_realized = cache.planner_cost_realized();
      result.stats.partitions_evicted = cache.partitions_evicted();
      result.stats.partition_bytes_peak =
          std::max(result.stats.partition_bytes_peak, cache.bytes_resident());
      result.stats.partition_bytes_final = cache.bytes_resident();
    }
    result.cancelled = cancel_hit.load(std::memory_order_relaxed);
    result.stats.total_seconds = total_clock.ElapsedSeconds();
  }
};

}  // namespace

const char* ValidatorKindToString(ValidatorKind kind) {
  switch (kind) {
    case ValidatorKind::kExact:
      return "OD (exact)";
    case ValidatorKind::kIterative:
      return "AOD (iterative)";
    case ValidatorKind::kOptimal:
      return "AOD (optimal)";
  }
  return "?";
}

const char* ShardTransportToString(ShardTransport transport) {
  switch (transport) {
    case ShardTransport::kInProcess:
      return "inproc";
    case ShardTransport::kSocket:
      return "socket";
    case ShardTransport::kProcess:
      return "process";
  }
  return "?";
}

CanonicalOc DiscoveredDependency::Oc() const {
  AOD_CHECK_MSG(kind == DependencyKind::kOc,
                "Oc() on a non-OC discovered dependency");
  return CanonicalOc{context, a, b, opposite};
}

CanonicalOfd DiscoveredDependency::Ofd() const {
  AOD_CHECK_MSG(kind == DependencyKind::kOfd,
                "Ofd() on a non-OFD discovered dependency");
  return CanonicalOfd{context, a};
}

namespace {

std::string DependencyString(
    const DiscoveredDependency& d,
    const std::function<std::string(int)>& name_of) {
  switch (d.kind) {
    case DependencyKind::kOc: {
      std::string rhs =
          d.opposite ? "desc(" + name_of(d.b) + ")" : name_of(d.b);
      return d.context.ToString(name_of) + ": " + name_of(d.a) + " ~ " + rhs;
    }
    case DependencyKind::kOfd:
      return d.context.ToString(name_of) + ": [] -> " + name_of(d.a);
    case DependencyKind::kFd:
      return d.context.ToString(name_of) + " -> " + name_of(d.a);
    case DependencyKind::kAfd:
      return d.context.ToString(name_of) + " ~> " + name_of(d.a);
  }
  return "?";
}

}  // namespace

std::string DiscoveredDependency::ToString(const EncodedTable& table) const {
  return DependencyString(*this,
                          [&table](int i) { return table.name(i); });
}

std::string DiscoveredDependency::ToString() const {
  return DependencyString(*this, [](int i) { return std::to_string(i); });
}

std::vector<const DiscoveredDependency*> DiscoveryResult::OfKind(
    DependencyKind kind) const {
  std::vector<const DiscoveredDependency*> out;
  for (const DiscoveredDependency& d : dependencies) {
    if (d.kind == kind) out.push_back(&d);
  }
  return out;
}

int64_t DiscoveryResult::CountOfKind(DependencyKind kind) const {
  int64_t count = 0;
  for (const DiscoveredDependency& d : dependencies) {
    if (d.kind == kind) ++count;
  }
  return count;
}

void DiscoveryResult::SortByInterestingness() {
  // One ranking across all kinds. The key is unique per dependency — a
  // (kind, context, a, b, opposite) tuple appears at most once in a run —
  // so the sorted order is fully determined by the set of results, never
  // by their arrival order. Within a kind the key restricts to the
  // pre-multi-kind per-kind keys, which keeps the ranked OC/OFD
  // sublists byte-identical to the old two-list sort.
  auto key = [](const DiscoveredDependency& d) {
    return std::make_tuple(-d.interestingness, d.level,
                           static_cast<int>(d.kind), d.context.bits(), d.a,
                           d.b, d.opposite);
  };
  std::sort(dependencies.begin(), dependencies.end(),
            [&](const DiscoveredDependency& x, const DiscoveredDependency& y) {
              return key(x) < key(y);
            });
}

std::string DiscoveryResult::Summary(const EncodedTable& table,
                                     size_t max_items) const {
  // OC and OFD sections always print (the pre-multi-kind format); FD and
  // AFD sections only when those kinds found anything.
  std::string out;
  auto section = [&](const char* title, DependencyKind kind, bool always) {
    const std::vector<const DiscoveredDependency*> deps = OfKind(kind);
    if (deps.empty() && !always) return;
    out += std::string(title) + " (" + std::to_string(deps.size()) + "):\n";
    for (size_t i = 0; i < deps.size() && i < max_items; ++i) {
      const DiscoveredDependency& d = *deps[i];
      char buf[96];
      std::snprintf(buf, sizeof(buf), "  e=%.4f score=%.4f level=%d  ",
                    d.error, d.interestingness, d.level);
      out += buf + d.ToString(table) + "\n";
    }
    if (deps.size() > max_items) {
      out += "  ... (" + std::to_string(deps.size() - max_items) + " more)\n";
    }
  };
  section("OCs", DependencyKind::kOc, /*always=*/true);
  section("OFDs", DependencyKind::kOfd, /*always=*/true);
  section("FDs", DependencyKind::kFd, /*always=*/false);
  section("AFDs", DependencyKind::kAfd, /*always=*/false);
  return out;
}

DiscoveryResult DiscoverOds(const EncodedTable& table,
                            const DiscoveryOptions& options) {
  AOD_CHECK_MSG(table.num_columns() <= AttributeSet::kMaxAttributes,
                "at most %d attributes are supported",
                AttributeSet::kMaxAttributes);
  AOD_CHECK_MSG(options.epsilon >= 0.0 && options.epsilon <= 1.0,
                "epsilon must be within [0, 1]");
  AOD_CHECK_MSG(options.kinds.IsValid() && !options.kinds.empty(),
                "kinds must name at least one known dependency kind");
  AOD_CHECK_MSG(options.afd_error >= 0.0 && options.afd_error <= 1.0,
                "afd_error must be within [0, 1]");
  AOD_CHECK_MSG(options.top_k >= 0, "top_k must be >= 0 (0 = keep all)");
  AOD_CHECK_MSG(options.num_shards >= 0 && options.num_shards <= 1024,
                "num_shards must be within [0, 1024]");
  AOD_CHECK_MSG(options.row_shards >= 0 && options.row_shards <= 1024,
                "row_shards must be within [0, 1024]");
  AOD_CHECK_MSG(options.max_lhs_arity >= 0,
                "max_lhs_arity must be >= 0 (0 = unbounded)");
  Driver driver(table, options);
  driver.Run();
  DiscoveryResult result = std::move(driver.result);
  if (options.top_k > 0) {
    // Deterministic top-k: rank everything (unique keys — see
    // SortByInterestingness), then truncate. Stats keep counting every
    // discovered dependency; only the materialized list shrinks.
    result.SortByInterestingness();
    if (static_cast<int64_t>(result.dependencies.size()) > options.top_k) {
      result.dependencies.resize(static_cast<size_t>(options.top_k));
    }
  }
  return result;
}

}  // namespace aod
