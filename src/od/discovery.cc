#include "od/discovery.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/interestingness.h"
#include "od/lattice.h"
#include "od/oc_validator.h"
#include "od/ofd_validator.h"
#include "partition/partition_cache.h"

namespace aod {
namespace {

/// Everything one node produces; merged serially in deterministic key
/// order, so the discovery output is identical for any thread count.
struct NodeOutcome {
  LatticeNode node;
  bool keep = true;
  std::vector<DiscoveredOc> ocs;
  std::vector<DiscoveredOfd> ofds;
  // Stats deltas. With num_threads > 1 the seconds are CPU time summed
  // across workers, not wall clock.
  double oc_seconds = 0.0;
  double ofd_seconds = 0.0;
  int64_t oc_validated = 0;
  int64_t ofd_validated = 0;
  int64_t oc_pruned = 0;
};

/// Run state threaded through the level loop.
struct Driver {
  const EncodedTable& table;
  const DiscoveryOptions& options;
  double epsilon;
  PartitionCache cache;
  DiscoveryResult result;
  Stopwatch total_clock;
  std::atomic<bool> deadline_hit{false};

  std::unique_ptr<AocSampler> sampler;

  Driver(const EncodedTable& t, const DiscoveryOptions& o)
      : table(t),
        options(o),
        epsilon(o.validator == ValidatorKind::kExact ? 0.0 : o.epsilon),
        cache(&t) {
    if (options.enable_sampling_filter &&
        options.validator == ValidatorKind::kOptimal) {
      sampler = std::make_unique<AocSampler>(&table, options.sampler_config);
    }
  }

  bool OverBudget() {
    if (options.time_budget_seconds > 0.0 &&
        total_clock.ElapsedSeconds() > options.time_budget_seconds) {
      deadline_hit.store(true, std::memory_order_relaxed);
    }
    return deadline_hit.load(std::memory_order_relaxed);
  }

  /// Read-only partition lookup. Every context a node can ask for was
  /// eagerly materialized while processing the level below (see Run), so
  /// worker threads never mutate the cache.
  std::shared_ptr<const StrippedPartition> Lookup(AttributeSet set) {
    AOD_CHECK_MSG(cache.Contains(set), "context partition %s not cached",
                  set.ToString().c_str());
    return cache.Get(set);
  }

  /// OFD candidate X\{A}: [] -> A. Appends to `out` when valid.
  bool ValidateOfdCandidate(AttributeSet context, int a, int level,
                            NodeOutcome* out) {
    auto partition = Lookup(context);
    ValidatorOptions vopts;
    vopts.collect_removal_set = options.collect_removal_sets;

    Stopwatch sw;
    ValidationOutcome outcome;
    if (options.validator == ValidatorKind::kExact) {
      outcome.valid = ValidateOfdExact(table, *partition, a);
    } else {
      outcome = ValidateOfdApprox(table, *partition, a, epsilon,
                                  table.num_rows(), vopts);
    }
    out->ofd_seconds += sw.ElapsedSeconds();
    ++out->ofd_validated;
    if (!outcome.valid) return false;

    DiscoveredOfd found;
    found.ofd = CanonicalOfd{context, a};
    found.approx_factor = outcome.approx_factor;
    found.removal_size = outcome.removal_size;
    found.level = level;
    found.interestingness =
        InterestingnessScore(*partition, context.size(), table.num_rows());
    found.removal_rows = std::move(outcome.removal_rows);
    out->ofds.push_back(std::move(found));
    return true;
  }

  /// OC candidate X\{A,B}: A ~ B (with polarity). Appends when valid.
  bool ValidateOcCandidate(AttributeSet context, AttributePair pair,
                           int level, NodeOutcome* out) {
    auto partition = Lookup(context);
    ValidatorOptions vopts;
    vopts.collect_removal_set = options.collect_removal_sets;
    vopts.opposite_polarity = pair.opposite;

    Stopwatch sw;
    ValidationOutcome outcome;
    switch (options.validator) {
      case ValidatorKind::kExact:
        outcome.valid =
            ValidateOcExact(table, *partition, pair.a, pair.b, pair.opposite);
        break;
      case ValidatorKind::kIterative:
        outcome = ValidateAocIterative(table, *partition, pair.a, pair.b,
                                       epsilon, table.num_rows(), vopts);
        break;
      case ValidatorKind::kOptimal:
        outcome = sampler != nullptr
                      ? sampler->Validate(*partition, pair.a, pair.b,
                                          epsilon, vopts)
                      : ValidateAocOptimal(table, *partition, pair.a,
                                           pair.b, epsilon,
                                           table.num_rows(), vopts);
        break;
    }
    out->oc_seconds += sw.ElapsedSeconds();
    ++out->oc_validated;
    if (!outcome.valid) return false;

    DiscoveredOc found;
    found.oc = CanonicalOc{context, pair.a, pair.b, pair.opposite};
    found.approx_factor = outcome.approx_factor;
    found.removal_size = outcome.removal_size;
    found.level = level;
    found.interestingness =
        InterestingnessScore(*partition, context.size(), table.num_rows());
    found.removal_rows = std::move(outcome.removal_rows);
    out->ocs.push_back(std::move(found));
    return true;
  }

  /// Processes one node against the completed level below. Pure except
  /// for timing counters: reads `previous` and the partition cache, never
  /// mutates shared state — the unit of parallelism.
  NodeOutcome ProcessNode(const LatticeNode& input,
                          const LatticeLevel& previous) {
    NodeOutcome out;
    out.node = input;
    LatticeNode* node = &out.node;
    const AttributeSet x = node->set;
    const int level = x.size();

    // C_c+(X) = ∩_{A∈X} C_c+(X\{A}).
    AttributeSet cc = AttributeSet::FullSet(table.num_columns());
    x.ForEach([&](int a) {
      const LatticeNode* sub = previous.Find(x.Without(a));
      AOD_CHECK_MSG(sub != nullptr, "missing subset node at level %d",
                    level - 1);
      cc = cc.Intersect(sub->cc);
    });
    node->cc = cc;

    // OFD candidates: A ∈ X ∩ C_c+(X), validated in context X\{A}.
    AttributeSet ofd_candidates = x.Intersect(node->cc);
    ofd_candidates.ForEach([&](int a) {
      if (ValidateOfdCandidate(x.Without(a), a, level, &out)) {
        // TANE minimality pruning: the found OFD makes X\{A} -> A minimal;
        // any superset restatement is redundant, as is any target outside
        // X (it would have X\{A} -> A as a sub-dependency).
        node->cc = node->cc.Without(a).Intersect(x);
        node->constant_here = node->constant_here.With(a);
      }
    });

    // OC candidates, in both polarities when requested.
    node->cs.clear();
    if (level >= 2) {
      std::vector<int> attrs = x.ToVector();
      for (size_t i = 0; i < attrs.size(); ++i) {
        for (size_t j = i + 1; j < attrs.size(); ++j) {
          for (int polarity = 0; polarity < (options.bidirectional ? 2 : 1);
               ++polarity) {
            AttributePair pair =
                AttributePair::Of(attrs[i], attrs[j], polarity == 1);
            // C_s+(X): the candidate must have survived in every subset
            // lacking one other attribute.
            bool inherited = true;
            if (level >= 3) {
              x.ForEach([&](int c) {
                if (c == pair.a || c == pair.b || !inherited) return;
                const LatticeNode* sub = previous.Find(x.Without(c));
                AOD_CHECK(sub != nullptr);
                if (!std::binary_search(sub->cs.begin(), sub->cs.end(),
                                        pair)) {
                  inherited = false;
                }
              });
            }
            if (!inherited) continue;

            // FASTOD's constancy-based pruning: drop {A,B} when
            // A ∉ C_c+(X\{B}) or B ∉ C_c+(X\{A}) — some OFD in the
            // context makes this OC candidate trivially true or redundant
            // with a smaller-context candidate. Constancy trivializes
            // both polarities alike.
            const LatticeNode* sub_b = previous.Find(x.Without(pair.b));
            const LatticeNode* sub_a = previous.Find(x.Without(pair.a));
            AOD_CHECK(sub_a != nullptr && sub_b != nullptr);
            if (!sub_b->cc.Contains(pair.a) || !sub_a->cc.Contains(pair.b)) {
              ++out.oc_pruned;
              continue;
            }

            if (!ValidateOcCandidate(x.Without(pair.a).Without(pair.b), pair,
                                     level, &out)) {
              // Still open: candidates propagate upward only while
              // invalid.
              node->cs.push_back(pair);
            }
          }
        }
      }
      std::sort(node->cs.begin(), node->cs.end());
    }

    // Node deletion: nothing left to find through X or any superset.
    out.keep = !(node->cc.empty() && node->cs.empty());
    return out;
  }

  void Run() {
    const int k = table.num_columns();

    // Virtual level 0: the empty set with C_c+(∅) = R.
    LatticeLevel previous(0);
    {
      LatticeNode root;
      root.cc = AttributeSet::FullSet(k);
      previous.Insert(std::move(root));
    }

    LatticeLevel current = LatticeLevel::MakeFirstLevel(k);
    while (!current.empty()) {
      const int level = current.level();
      result.stats.levels_processed = level;
      result.stats.RecordNodesAtLevel(level, current.size());
      result.stats.nodes_processed += current.size();
      AOD_LOG(kInfo) << "level " << level << ": " << current.size()
                     << " nodes, " << result.stats.TotalOcs() << " OCs so far";

      // Deterministic node order: sort keys by bit pattern.
      std::vector<AttributeSet> keys;
      keys.reserve(static_cast<size_t>(current.size()));
      for (const auto& [set, node] : current.nodes()) keys.push_back(set);
      std::sort(keys.begin(), keys.end());

      // Process nodes — serially or on worker threads. Workers only read
      // `previous`, `current` and cached partitions; each writes its own
      // outcome slot, so the merged result is order-deterministic.
      std::vector<NodeOutcome> outcomes(keys.size());
      std::vector<uint8_t> processed(keys.size(), 0);
      int threads = std::max(1, options.num_threads);
      threads = static_cast<int>(
          std::min<size_t>(static_cast<size_t>(threads), keys.size()));
      auto worker = [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (OverBudget()) break;
          outcomes[i] = ProcessNode(*current.Find(keys[i]), previous);
          processed[i] = 1;
        }
      };
      if (threads <= 1) {
        worker(0, keys.size());
      } else {
        std::vector<std::thread> pool;
        size_t chunk = (keys.size() + static_cast<size_t>(threads) - 1) /
                       static_cast<size_t>(threads);
        for (int t = 0; t < threads; ++t) {
          size_t begin = static_cast<size_t>(t) * chunk;
          size_t end = std::min(keys.size(), begin + chunk);
          if (begin >= end) break;
          pool.emplace_back(worker, begin, end);
        }
        for (auto& th : pool) th.join();
      }

      // Serial merge in key order.
      bool incomplete = false;
      for (size_t i = 0; i < keys.size(); ++i) {
        if (!processed[i]) {
          incomplete = true;
          continue;
        }
        NodeOutcome& out = outcomes[i];
        result.stats.oc_validation_seconds += out.oc_seconds;
        result.stats.ofd_validation_seconds += out.ofd_seconds;
        result.stats.oc_candidates_validated += out.oc_validated;
        result.stats.ofd_candidates_validated += out.ofd_validated;
        result.stats.oc_candidates_pruned += out.oc_pruned;
        for (auto& d : out.ocs) {
          result.stats.RecordOcAtLevel(d.level);
          result.ocs.push_back(std::move(d));
        }
        for (auto& d : out.ofds) {
          result.stats.RecordOfdAtLevel(d.level);
          result.ofds.push_back(std::move(d));
        }
        if (out.keep) {
          *current.Find(keys[i]) = std::move(out.node);
        } else {
          current.Erase(keys[i]);
        }
      }
      if (incomplete) {
        result.timed_out = true;
        break;
      }

      if (options.max_level != 0 && level >= options.max_level) break;
      if (level >= k) break;

      // Materialize the partitions of surviving nodes while their subset
      // partitions are still cached: levels above use them as contexts,
      // and worker threads may only *look up* partitions.
      for (AttributeSet key : keys) {
        if (current.Find(key) == nullptr) continue;
        if (OverBudget()) {
          result.timed_out = true;
          break;
        }
        Stopwatch sw;
        cache.Get(key);
        result.stats.partition_seconds += sw.ElapsedSeconds();
      }
      if (result.timed_out) break;

      LatticeLevel next = current.GenerateNext();
      // Contexts needed at level l+1 have sizes l and l-1.
      cache.EvictSmallerThan(level - 1);
      previous = std::move(current);
      current = std::move(next);
    }

    result.stats.partitions_computed = cache.products_computed();
    result.stats.total_seconds = total_clock.ElapsedSeconds();
  }
};

}  // namespace

const char* ValidatorKindToString(ValidatorKind kind) {
  switch (kind) {
    case ValidatorKind::kExact:
      return "OD (exact)";
    case ValidatorKind::kIterative:
      return "AOD (iterative)";
    case ValidatorKind::kOptimal:
      return "AOD (optimal)";
  }
  return "?";
}

void DiscoveryResult::SortByInterestingness() {
  auto oc_key = [](const DiscoveredOc& d) {
    return std::make_tuple(-d.interestingness, d.level, d.oc.context.bits(),
                           d.oc.a, d.oc.b, d.oc.opposite);
  };
  std::sort(ocs.begin(), ocs.end(),
            [&](const DiscoveredOc& x, const DiscoveredOc& y) {
              return oc_key(x) < oc_key(y);
            });
  auto ofd_key = [](const DiscoveredOfd& d) {
    return std::make_tuple(-d.interestingness, d.level, d.ofd.context.bits(),
                           d.ofd.a);
  };
  std::sort(ofds.begin(), ofds.end(),
            [&](const DiscoveredOfd& x, const DiscoveredOfd& y) {
              return ofd_key(x) < ofd_key(y);
            });
}

std::string DiscoveryResult::Summary(const EncodedTable& table,
                                     size_t max_items) const {
  std::string out;
  out += "OCs (" + std::to_string(ocs.size()) + "):\n";
  for (size_t i = 0; i < ocs.size() && i < max_items; ++i) {
    const auto& d = ocs[i];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  e=%.4f score=%.4f level=%d  ",
                  d.approx_factor, d.interestingness, d.level);
    out += buf + d.oc.ToString(table) + "\n";
  }
  if (ocs.size() > max_items) {
    out += "  ... (" + std::to_string(ocs.size() - max_items) + " more)\n";
  }
  out += "OFDs (" + std::to_string(ofds.size()) + "):\n";
  for (size_t i = 0; i < ofds.size() && i < max_items; ++i) {
    const auto& d = ofds[i];
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  e=%.4f score=%.4f level=%d  ",
                  d.approx_factor, d.interestingness, d.level);
    out += buf + d.ofd.ToString(table) + "\n";
  }
  if (ofds.size() > max_items) {
    out += "  ... (" + std::to_string(ofds.size() - max_items) + " more)\n";
  }
  return out;
}

DiscoveryResult DiscoverOds(const EncodedTable& table,
                            const DiscoveryOptions& options) {
  AOD_CHECK_MSG(table.num_columns() <= AttributeSet::kMaxAttributes,
                "at most %d attributes are supported",
                AttributeSet::kMaxAttributes);
  AOD_CHECK_MSG(options.epsilon >= 0.0 && options.epsilon <= 1.0,
                "epsilon must be within [0, 1]");
  Driver driver(table, options);
  driver.Run();
  return std::move(driver.result);
}

}  // namespace aod
