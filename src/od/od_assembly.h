// Assembling canonical discovery results into ODs.
//
// The canonical mapping (paper Sec. 2.2) states that the OD X: A -> B
// holds iff the OC X: A ~ B and the OFD XA: [] -> B hold. The discovery
// framework reports OCs and OFDs separately; this module composes them
// back into OD statements.
//
// For *approximate* dependencies the composition is subtle (paper
// Sec. 2.3): e1 <= eps and e2 <= eps for the parts does NOT imply
// e <= eps for the OD. AssembleOds therefore re-validates each composed
// candidate with the descending-tie variant of Algorithm 2 (Sec. 3.3),
// which computes the exact minimal removal set for the OD in one
// O(n log n) pass.
#ifndef AOD_OD_OD_ASSEMBLY_H_
#define AOD_OD_OD_ASSEMBLY_H_

#include <string>
#include <vector>

#include "data/encoder.h"
#include "od/canonical_od.h"
#include "od/discovery.h"
#include "partition/partition_cache.h"

namespace aod {

/// A canonical OD X: A -> B ("A orders B within each class of X").
struct DiscoveredOd {
  AttributeSet context;
  int a = -1;
  int b = -1;
  /// Exact approximation factor of the OD (from the Sec. 3.3 validator).
  double approx_factor = 0.0;
  int64_t removal_size = 0;
  /// Factors of the constituent parts, for reference.
  double oc_factor = 0.0;
  double ofd_factor = 0.0;

  /// "{pos}: sal -> bonus".
  std::string ToString(const EncodedTable& table) const;
};

/// Composes OD candidates from a discovery result: every discovered OC
/// X: A ~ B is paired with discovered OFDs XA: [] -> B (and XB: [] -> A,
/// by symmetry), each composition re-validated against `epsilon`.
/// `cache` supplies the context partitions (reuse the discovery run's
/// cache when available). Only straight-polarity OCs compose into ODs.
std::vector<DiscoveredOd> AssembleOds(const EncodedTable& table,
                                      const DiscoveryResult& result,
                                      double epsilon, PartitionCache* cache);

}  // namespace aod

#endif  // AOD_OD_OD_ASSEMBLY_H_
