#include "od/discovery_stats.h"

#include <numeric>
#include <sstream>

#include "common/string_util.h"

namespace aod {
namespace {

void EnsureSize(std::vector<int64_t>* v, int level) {
  if (static_cast<int>(v->size()) <= level) {
    v->resize(static_cast<size_t>(level) + 1, 0);
  }
}

}  // namespace

double DiscoveryStats::OcValidationShare() const {
  if (total_seconds <= 0.0) return 0.0;
  return oc_validation_seconds / total_seconds;
}

double DiscoveryStats::AverageOcLevel() const {
  int64_t count = 0;
  int64_t weighted = 0;
  for (size_t level = 0; level < ocs_per_level.size(); ++level) {
    count += ocs_per_level[level];
    weighted += ocs_per_level[level] * static_cast<int64_t>(level);
  }
  if (count == 0) return 0.0;
  return static_cast<double>(weighted) / static_cast<double>(count);
}

int64_t DiscoveryStats::TotalOcs() const {
  return std::accumulate(ocs_per_level.begin(), ocs_per_level.end(),
                         int64_t{0});
}

int64_t DiscoveryStats::TotalOfds() const {
  return std::accumulate(ofds_per_level.begin(), ofds_per_level.end(),
                         int64_t{0});
}

int64_t DiscoveryStats::TotalFds() const {
  return std::accumulate(fds_per_level.begin(), fds_per_level.end(),
                         int64_t{0});
}

int64_t DiscoveryStats::TotalAfds() const {
  return std::accumulate(afds_per_level.begin(), afds_per_level.end(),
                         int64_t{0});
}

void DiscoveryStats::RecordOcAtLevel(int level) {
  EnsureSize(&ocs_per_level, level);
  ++ocs_per_level[static_cast<size_t>(level)];
}

void DiscoveryStats::RecordOfdAtLevel(int level) {
  EnsureSize(&ofds_per_level, level);
  ++ofds_per_level[static_cast<size_t>(level)];
}

void DiscoveryStats::RecordFdAtLevel(int level) {
  EnsureSize(&fds_per_level, level);
  ++fds_per_level[static_cast<size_t>(level)];
}

void DiscoveryStats::RecordAfdAtLevel(int level) {
  EnsureSize(&afds_per_level, level);
  ++afds_per_level[static_cast<size_t>(level)];
}

void DiscoveryStats::RecordNodesAtLevel(int level, int64_t count) {
  EnsureSize(&nodes_per_level, level);
  nodes_per_level[static_cast<size_t>(level)] += count;
}

std::string DiscoveryStats::ToString() const {
  // FD/AFD lines and columns appear only when those kinds actually ran,
  // so the report for a default-kind (OC/OFD) run is byte-identical to
  // the pre-multi-kind format.
  const bool fd_kinds_ran =
      fd_candidates_validated + afd_candidates_validated > 0;
  std::ostringstream out;
  out << "total time: " << FormatDouble(total_seconds, 3) << " s wall, "
      << threads_used << (threads_used == 1 ? " thread" : " threads") << "\n"
      << "  OC validation:  " << FormatDouble(oc_validation_seconds, 3)
      << " s CPU (" << FormatDouble(100.0 * OcValidationShare(), 1)
      << "% of total; summed across workers)\n"
      << "  OFD validation: " << FormatDouble(ofd_validation_seconds, 3)
      << " s CPU\n"
      << (fd_kinds_ran
              ? "  FD validation:  " + FormatDouble(fd_validation_seconds, 3) +
                    " s CPU\n" + "  AFD validation: " +
                    FormatDouble(afd_validation_seconds, 3) + " s CPU\n"
              : "")
      << "  partitions:     " << FormatDouble(partition_seconds, 3)
      << " s CPU (" << partitions_computed << " products)\n"
      << "  planner:        " << planner_derivations << " planned derivations"
      << ", cost est " << planner_cost_estimated << " / realized "
      << planner_cost_realized << " rows\n"
      << "  partition memory: "
      << FormatDouble(static_cast<double>(partition_bytes_peak) / (1 << 20), 2)
      << " MiB peak, "
      << FormatDouble(static_cast<double>(partition_bytes_evicted) / (1 << 20),
                      2)
      << " MiB evicted, "
      << FormatDouble(static_cast<double>(partition_bytes_final) / (1 << 20),
                      2)
      << " MiB final (" << partitions_evicted << " evicted)\n"
      << "  phase wall clock: candidates "
      << FormatDouble(candidate_wall_seconds, 3) << " s, validation "
      << FormatDouble(validation_wall_seconds, 3) << " s, partitions "
      << FormatDouble(partition_wall_seconds, 3) << " s, merge "
      << FormatDouble(merge_wall_seconds, 3) << " s\n"
      << (shards_used > 0
              ? "  shards:         " + std::to_string(shards_used) +
                    " shard runners, " +
                    FormatDouble(
                        static_cast<double>(shard_bytes_shipped) / (1 << 20),
                        2) +
                    " MiB shipped over the wire\n" +
                    "  shard codecs:   " +
                    FormatDouble(
                        static_cast<double>(shard_bytes_wire) / (1 << 20), 2) +
                    " MiB wire / " +
                    FormatDouble(
                        static_cast<double>(shard_bytes_raw) / (1 << 20), 2) +
                    " MiB raw (ratio " +
                    FormatDouble(shard_bytes_wire > 0
                                     ? static_cast<double>(shard_bytes_raw) /
                                           static_cast<double>(
                                               shard_bytes_wire)
                                     : 0.0,
                                 2) +
                    "x)\n"
              : "")
      << (row_shards_used > 0
              ? "  row shards:     " + std::to_string(row_shards_used) +
                    " row shards, " +
                    FormatDouble(static_cast<double>(row_shard_bytes_shipped) /
                                     (1 << 20),
                                 2) +
                    " MiB shipped (" +
                    FormatDouble(
                        static_cast<double>(row_shard_bytes_wire) / (1 << 20),
                        2) +
                    " MiB wire / " +
                    FormatDouble(
                        static_cast<double>(row_shard_bytes_raw) / (1 << 20),
                        2) +
                    " MiB raw)\n"
              : "")
      << (shard_retries + shard_respawns + shard_speculative_wins +
                      shard_speculative_losses + shard_fallback_shards +
                      shard_footers_missing >
                  0
              ? "  shard recovery: " + std::to_string(shard_retries) +
                    " retries, " + std::to_string(shard_respawns) +
                    " respawns, speculation " +
                    std::to_string(shard_speculative_wins) + " won / " +
                    std::to_string(shard_speculative_losses) + " lost, " +
                    std::to_string(shard_fallback_shards) +
                    " shards fell back in-process, " +
                    std::to_string(shard_footers_missing) +
                    " footers lost\n"
              : "")
      << "candidates: " << oc_candidates_validated << " OC validated, "
      << oc_candidates_pruned << " OC pruned, " << ofd_candidates_validated
      << " OFD validated"
      << (fd_kinds_ran ? ", " + std::to_string(fd_candidates_validated) +
                             " FD validated, " +
                             std::to_string(afd_candidates_validated) +
                             " AFD validated"
                       : "")
      << "\n"
      << "lattice: " << nodes_processed << " nodes over " << levels_processed
      << " levels\n"
      << "found: " << TotalOcs() << " OCs (avg level "
      << FormatDouble(AverageOcLevel(), 2) << "), " << TotalOfds() << " OFDs"
      << (fd_kinds_ran ? ", " + std::to_string(TotalFds()) + " FDs, " +
                             std::to_string(TotalAfds()) + " AFDs"
                       : "")
      << "\n";
  out << (fd_kinds_ran ? "per level (level: nodes / OCs / OFDs / FDs / AFDs):\n"
                       : "per level (level: nodes / OCs / OFDs):\n");
  size_t max_level = nodes_per_level.size();
  max_level = std::max(max_level, ocs_per_level.size());
  max_level = std::max(max_level, ofds_per_level.size());
  if (fd_kinds_ran) {
    max_level = std::max(max_level, fds_per_level.size());
    max_level = std::max(max_level, afds_per_level.size());
  }
  for (size_t level = 1; level < max_level; ++level) {
    auto at = [level](const std::vector<int64_t>& v) {
      return level < v.size() ? v[level] : 0;
    };
    out << "  " << level << ": " << at(nodes_per_level) << " / "
        << at(ocs_per_level) << " / " << at(ofds_per_level);
    if (fd_kinds_ran) {
      out << " / " << at(fds_per_level) << " / " << at(afds_per_level);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace aod
