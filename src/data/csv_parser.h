// RFC-4180-style CSV reader with type inference.
#ifndef AOD_DATA_CSV_PARSER_H_
#define AOD_DATA_CSV_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace aod {

/// CSV parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// First record carries column names; otherwise columns are named c0..cN.
  bool has_header = true;
  /// Infer int64/double column types from the data; otherwise everything
  /// is read as string.
  bool infer_types = true;
  /// Stop after this many data rows (-1 = read all). Supports the paper's
  /// prefix-sampling experiments.
  int64_t max_rows = -1;
};

/// Parses CSV text into a Table. Handles quoted fields with embedded
/// delimiters/newlines/CRLF (preserved verbatim) and doubled-quote
/// escapes; tolerates CRLF and classic-Mac lone-'\r' record endings and
/// a final record without a trailing newline. Malformed input fails with
/// a ParseError rather than misparsing: rows whose field count differs
/// from the header (too few or too many), unterminated quotes, and bytes
/// between a closing quote and the next delimiter/record end are all
/// rejected.
Result<Table> ParseCsv(std::string_view text, const CsvOptions& options = {});

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes a table back to CSV (used by examples and test round-trips).
std::string WriteCsv(const Table& table, char delimiter = ',');

}  // namespace aod

#endif  // AOD_DATA_CSV_PARSER_H_
