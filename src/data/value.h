// Typed cell values and their ordering semantics.
//
// Order dependencies are defined over totally ordered attribute domains
// (paper Def. 2.1). Within libaod every column is eventually reduced to
// dense integer ranks (see data/encoder.h); Value is the pre-encoding
// representation used by the CSV reader, generators and tests.
#ifndef AOD_DATA_VALUE_H_
#define AOD_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace aod {

/// Physical type of a column.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeToString(DataType type);

/// A single cell: null, integer, double, or string.
///
/// Total order used throughout libaod (and by the rank encoder):
///   null < any non-null;
///   numeric values (int64/double) compare numerically across types;
///   any numeric < any string;
///   strings compare lexicographically (byte-wise).
/// Placing nulls first matches SQL's `NULLS FIRST` and the convention in
/// the OD discovery literature where missing values form the smallest
/// equivalence class.
class Value {
 public:
  /// Constructs a null value.
  Value() : repr_(std::monostate{}) {}
  /* implicit */ Value(int64_t v) : repr_(v) {}
  /* implicit */ Value(double v) : repr_(v) {}
  /* implicit */ Value(std::string v) : repr_(std::move(v)) {}
  /* implicit */ Value(const char* v) : repr_(std::string(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  const std::string& as_string() const { return std::get<std::string>(repr_); }

  /// Numeric view: valid for int and double values.
  double AsNumeric() const;

  /// Three-way comparison under the documented total order.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Display form: "NULL", "42", "2.5", or the raw string.
  std::string ToString() const;

 private:
  // Rank of the value's type class in the cross-type order.
  int TypeRank() const;

  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

}  // namespace aod

#endif  // AOD_DATA_VALUE_H_
