#include "data/type_inference.h"

#include "common/string_util.h"

namespace aod {

bool IsNullToken(std::string_view cell) {
  cell = TrimWhitespace(cell);
  if (cell.empty()) return true;
  // "nan" is how R and numpy spell a missing numeric; non-finite values
  // have no place in a totally ordered domain, so treat them as missing.
  return EqualsIgnoreCase(cell, "null") || EqualsIgnoreCase(cell, "na") ||
         EqualsIgnoreCase(cell, "n/a") || EqualsIgnoreCase(cell, "nan") ||
         cell == "?";
}

DataType InferColumnType(const std::vector<std::string>& cells) {
  bool all_int = true;
  bool all_numeric = true;
  bool any_non_null = false;
  for (const auto& cell : cells) {
    if (IsNullToken(cell)) continue;
    any_non_null = true;
    if (all_int && !ParseInt64(cell).has_value()) all_int = false;
    if (!all_int && all_numeric && !ParseDouble(cell).has_value()) {
      all_numeric = false;
      break;
    }
  }
  if (!any_non_null) return DataType::kString;
  if (all_int) return DataType::kInt64;
  if (all_numeric) return DataType::kDouble;
  return DataType::kString;
}

Value ParseCell(std::string_view cell, DataType type) {
  if (IsNullToken(cell)) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      auto v = ParseInt64(cell);
      return v.has_value() ? Value(*v) : Value::Null();
    }
    case DataType::kDouble: {
      auto v = ParseDouble(cell);
      return v.has_value() ? Value(*v) : Value::Null();
    }
    case DataType::kString:
      return Value(std::string(TrimWhitespace(cell)));
  }
  return Value::Null();
}

}  // namespace aod
