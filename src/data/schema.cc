#include "data/schema.h"

#include "common/macros.h"

namespace aod {

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) AddField(std::move(f));
}

const Field& Schema::field(int i) const {
  AOD_CHECK_MSG(i >= 0 && i < num_fields(), "field index %d out of range", i);
  return fields_[static_cast<size_t>(i)];
}

Result<int> Schema::FieldIndex(const std::string& name) const {
  for (int i = 0; i < num_fields(); ++i) {
    if (fields_[static_cast<size_t>(i)].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

bool Schema::HasField(const std::string& name) const {
  return FieldIndex(name).ok();
}

void Schema::AddField(Field field) {
  AOD_CHECK_MSG(!HasField(field.name), "duplicate field name '%s'",
                field.name.c_str());
  fields_.push_back(std::move(field));
}

std::string Schema::ToString() const {
  std::string out;
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[static_cast<size_t>(i)].name;
    out += ":";
    out += DataTypeToString(fields_[static_cast<size_t>(i)].type);
  }
  return out;
}

}  // namespace aod
