#include "data/csv_parser.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "data/type_inference.h"

namespace aod {
namespace {

/// Splits raw CSV text into records of fields, honoring quoting.
Result<std::vector<std::vector<std::string>>> Tokenize(std::string_view text,
                                                       char delimiter) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_field = false;

  auto end_field = [&]() {
    record.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
    any_field = true;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    any_field = false;
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      // CRLF: drop the '\r' and let the '\n' terminate the record. A
      // *lone* '\r' (classic Mac line ending) terminates the record
      // itself — the old behavior of swallowing it silently glued two
      // records into one, a misparse no error ever surfaced.
      if (i + 1 < n && text[i + 1] == '\n') {
        ++i;
        continue;
      }
      if (any_field || !field.empty() || field_was_quoted) {
        end_record();
      }
      ++i;
      continue;
    }
    if (c == '\n') {
      // Skip fully empty lines (no fields started on this line).
      if (any_field || !field.empty() || field_was_quoted) {
        end_record();
      }
      ++i;
      continue;
    }
    if (field_was_quoted) {
      // After a closing quote only a delimiter or a record end may
      // follow ('"a"b' is not "ab" in any CSV dialect); accepting the
      // byte would silently corrupt the field.
      return Status::ParseError(
          "unexpected character after closing quote at byte " +
          std::to_string(i));
    }
    field += c;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field at end of input");
  }
  if (any_field || !field.empty() || field_was_quoted) {
    end_record();
  }
  return records;
}

}  // namespace

Result<Table> ParseCsv(std::string_view text, const CsvOptions& options) {
  AOD_ASSIGN_OR_RETURN(auto records, Tokenize(text, options.delimiter));
  if (records.empty()) {
    return Status::ParseError("CSV input contains no records");
  }

  std::vector<std::string> names;
  size_t first_data = 0;
  const size_t width = records[0].size();
  if (options.has_header) {
    for (auto& h : records[0]) {
      names.emplace_back(TrimWhitespace(h));
    }
    first_data = 1;
  } else {
    for (size_t c = 0; c < width; ++c) names.push_back("c" + std::to_string(c));
  }
  // De-duplicate header names defensively: real exports repeat names.
  for (size_t c = 0; c < names.size(); ++c) {
    if (names[c].empty()) names[c] = "c" + std::to_string(c);
    for (size_t p = 0; p < c; ++p) {
      if (names[p] == names[c]) {
        names[c] += "_" + std::to_string(c);
        break;
      }
    }
  }

  size_t last_data = records.size();
  if (options.max_rows >= 0) {
    last_data = std::min(last_data,
                         first_data + static_cast<size_t>(options.max_rows));
  }

  for (size_t r = first_data; r < last_data; ++r) {
    if (records[r].size() != width) {
      return Status::ParseError(
          "row " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(width));
    }
  }

  // Column-major staging for type inference.
  std::vector<DataType> types(width, DataType::kString);
  if (options.infer_types) {
    std::vector<std::string> cells;
    cells.reserve(last_data - first_data);
    for (size_t c = 0; c < width; ++c) {
      cells.clear();
      for (size_t r = first_data; r < last_data; ++r) {
        cells.push_back(records[r][c]);
      }
      types[c] = InferColumnType(cells);
    }
  }

  Schema schema;
  for (size_t c = 0; c < width; ++c) {
    schema.AddField({names[c], types[c]});
  }
  Table table(std::move(schema));
  std::vector<Value> row(width);
  for (size_t r = first_data; r < last_data; ++r) {
    for (size_t c = 0; c < width; ++c) {
      row[c] = ParseCell(records[r][c], types[c]);
    }
    table.AppendRow(row);
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(ss.str(), options);
}

std::string WriteCsv(const Table& table, char delimiter) {
  auto escape = [&](const std::string& s) {
    bool needs_quotes = s.find(delimiter) != std::string::npos ||
                        s.find('"') != std::string::npos ||
                        s.find('\n') != std::string::npos ||
                        s.find('\r') != std::string::npos;
    if (!needs_quotes) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += "\"";
    return out;
  };
  std::string out;
  for (int c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out += delimiter;
    out += escape(table.schema().field(c).name);
  }
  out += "\n";
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += delimiter;
      Value v = table.GetValue(r, c);
      if (!v.is_null()) out += escape(v.ToString());
    }
    out += "\n";
  }
  return out;
}

}  // namespace aod
