// Relational schema: an ordered list of named, typed attributes.
#ifndef AOD_DATA_SCHEMA_H_
#define AOD_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/value.h"

namespace aod {

/// One attribute of a relation.
struct Field {
  std::string name;
  DataType type = DataType::kString;
};

/// Ordered attribute list; attribute indices are stable and are the ids
/// used by partition::AttributeSet throughout the discovery framework.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const;
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the attribute named `name`, or kNotFound error.
  Result<int> FieldIndex(const std::string& name) const;

  bool HasField(const std::string& name) const;

  /// Appends a field. Field names must be unique (checked).
  void AddField(Field field);

  /// "name:type, name:type, ...".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace aod

#endif  // AOD_DATA_SCHEMA_H_
