// Column type inference for textual input (CSV).
#ifndef AOD_DATA_TYPE_INFERENCE_H_
#define AOD_DATA_TYPE_INFERENCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "data/value.h"

namespace aod {

/// True if `cell` denotes a missing value: empty, "NULL", "null", "NA",
/// "N/A", or "?" (the conventions in the BTS / NCSBE exports the paper
/// profiles).
bool IsNullToken(std::string_view cell);

/// Infers the narrowest type that can represent every non-null cell:
/// int64 if all parse as integers, else double if all parse as numbers,
/// else string. An all-null column is typed string.
DataType InferColumnType(const std::vector<std::string>& cells);

/// Converts one textual cell to a Value of `type`. Null tokens become
/// Value::Null(); non-null cells that fail to parse as `type` also become
/// null (dirty data must not abort profiling — the whole point of
/// *approximate* dependencies is tolerating such cells).
Value ParseCell(std::string_view cell, DataType type);

}  // namespace aod

#endif  // AOD_DATA_TYPE_INFERENCE_H_
