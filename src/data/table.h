// In-memory relational table instance (the paper's `r`).
#ifndef AOD_DATA_TABLE_H_
#define AOD_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/column.h"
#include "data/schema.h"

namespace aod {

/// Columnar table with a fixed schema.
///
/// The discovery framework never reads a Table directly; it consumes the
/// rank-encoded form produced by EncodeTable() (data/encoder.h). Table is
/// the user-facing ingestion type (CSV reader, generators, examples).
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  int num_columns() const { return schema_.num_fields(); }
  int64_t num_rows() const { return num_rows_; }

  const Column& column(int i) const;
  Column& mutable_column(int i);

  /// Column lookup by name.
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends one row; `row.size()` must equal num_columns() and each value
  /// must be null or match the column type.
  void AppendRow(const std::vector<Value>& row);

  Value GetValue(int64_t row, int col) const;
  void SetValue(int64_t row, int col, const Value& v);

  /// Builds a table from literal rows — the test/example workhorse, e.g.
  /// the paper's Table 1 fits in a dozen lines.
  static Table FromRows(Schema schema,
                        const std::vector<std::vector<Value>>& rows);

  /// Copies the first `n` rows (or all rows if n >= num_rows). Mirrors the
  /// paper's row-count scalability sweeps over dataset prefixes.
  Table Head(int64_t n) const;

  /// Copies a subset of columns, in the given order. Mirrors the paper's
  /// attribute-count sweeps.
  Result<Table> SelectColumns(const std::vector<std::string>& names) const;

  /// Projects the first `k` columns.
  Table SelectFirstColumns(int k) const;

  /// Renders rows [0, limit) as an aligned ASCII table (for examples).
  std::string ToString(int64_t limit = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace aod

#endif  // AOD_DATA_TABLE_H_
