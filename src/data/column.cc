#include "data/column.h"

#include "common/macros.h"

namespace aod {

Column::Column(std::string name, DataType type)
    : name_(std::move(name)), type_(type) {}

void Column::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
      AOD_CHECK_MSG(v.is_int(), "column '%s': appending non-int to int64",
                    name_.c_str());
      AppendInt(v.as_int());
      return;
    case DataType::kDouble:
      AOD_CHECK_MSG(v.is_int() || v.is_double(),
                    "column '%s': appending non-numeric to double",
                    name_.c_str());
      AppendDouble(v.AsNumeric());
      return;
    case DataType::kString:
      AOD_CHECK_MSG(v.is_string(), "column '%s': appending non-string",
                    name_.c_str());
      AppendString(v.as_string());
      return;
  }
}

void Column::AppendNull() {
  valid_.push_back(0);
  ++null_count_;
  switch (type_) {
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
}

void Column::AppendInt(int64_t v) {
  AOD_DCHECK(type_ == DataType::kInt64);
  valid_.push_back(1);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  AOD_DCHECK(type_ == DataType::kDouble);
  valid_.push_back(1);
  doubles_.push_back(v);
}

void Column::AppendString(std::string v) {
  AOD_DCHECK(type_ == DataType::kString);
  valid_.push_back(1);
  strings_.push_back(std::move(v));
}

Value Column::GetValue(int64_t row) const {
  AOD_CHECK_MSG(row >= 0 && row < size(), "row %lld out of range",
                static_cast<long long>(row));
  size_t i = static_cast<size_t>(row);
  if (!valid_[i]) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value(ints_[i]);
    case DataType::kDouble:
      return Value(doubles_[i]);
    case DataType::kString:
      return Value(strings_[i]);
  }
  return Value::Null();
}

void Column::SetValue(int64_t row, const Value& v) {
  AOD_CHECK_MSG(row >= 0 && row < size(), "row %lld out of range",
                static_cast<long long>(row));
  size_t i = static_cast<size_t>(row);
  bool was_null = !valid_[i];
  if (v.is_null()) {
    if (!was_null) ++null_count_;
    valid_[i] = 0;
    return;
  }
  if (was_null) --null_count_;
  valid_[i] = 1;
  switch (type_) {
    case DataType::kInt64:
      AOD_CHECK(v.is_int());
      ints_[i] = v.as_int();
      return;
    case DataType::kDouble:
      AOD_CHECK(v.is_int() || v.is_double());
      doubles_[i] = v.AsNumeric();
      return;
    case DataType::kString:
      AOD_CHECK(v.is_string());
      strings_[i] = v.as_string();
      return;
  }
}

}  // namespace aod
