// Typed, nullable columnar storage.
#ifndef AOD_DATA_COLUMN_H_
#define AOD_DATA_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/value.h"

namespace aod {

/// A single nullable column with one physical type.
///
/// Values are stored in a dense typed vector plus a validity vector so the
/// encoder and generators never pay variant overhead per cell. Appending a
/// Value of the wrong type is a checked programmer error (the CSV reader
/// performs coercion before appending).
class Column {
 public:
  Column(std::string name, DataType type);

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  int64_t size() const { return static_cast<int64_t>(valid_.size()); }

  /// Appends a value; must be null or match type().
  void Append(const Value& v);
  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);

  bool IsNull(int64_t row) const { return !valid_[static_cast<size_t>(row)]; }

  /// Materializes row `row` as a Value (null-aware).
  Value GetValue(int64_t row) const;

  /// Overwrites row `row`; must be null or match type(). Used by the error
  /// injector to plant dirty cells.
  void SetValue(int64_t row, const Value& v);

  // Typed raw access for hot paths; rows that are null hold a default
  // (0 / 0.0 / "") slot that must not be interpreted without IsNull().
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Number of null cells.
  int64_t null_count() const { return null_count_; }

 private:
  std::string name_;
  DataType type_;
  std::vector<uint8_t> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  int64_t null_count_ = 0;
};

}  // namespace aod

#endif  // AOD_DATA_COLUMN_H_
