#include "data/value.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace aod {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(as_int());
  AOD_CHECK_MSG(is_double(), "AsNumeric() on non-numeric value");
  return as_double();
}

int Value::TypeRank() const {
  if (is_null()) return 0;
  if (is_int() || is_double()) return 1;
  return 2;
}

int Value::Compare(const Value& other) const {
  int tr = TypeRank();
  int otr = other.TypeRank();
  if (tr != otr) return tr < otr ? -1 : 1;
  switch (tr) {
    case 0:
      return 0;  // null == null
    case 1: {
      // Compare int64-int64 exactly; mixed numeric via double.
      if (is_int() && other.is_int()) {
        int64_t a = as_int();
        int64_t b = other.as_int();
        if (a < b) return -1;
        if (a > b) return 1;
        return 0;
      }
      double a = AsNumeric();
      double b = other.AsNumeric();
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    default: {
      int c = as_string().compare(other.as_string());
      if (c < 0) return -1;
      if (c > 0) return 1;
      return 0;
    }
  }
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) return FormatDouble(as_double(), 6);
  return as_string();
}

}  // namespace aod
