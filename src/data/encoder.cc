#include "data/encoder.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace aod {

EncodedTable::EncodedTable(std::vector<EncodedColumn> columns,
                           int64_t num_rows)
    : columns_(std::move(columns)), num_rows_(num_rows) {
  for (const auto& col : columns_) {
    AOD_CHECK_MSG(static_cast<int64_t>(col.ranks.size()) == num_rows_,
                  "column '%s' has %zu ranks, expected %lld",
                  col.name.c_str(), col.ranks.size(),
                  static_cast<long long>(num_rows_));
  }
}

const EncodedColumn& EncodedTable::column(int i) const {
  AOD_CHECK_MSG(i >= 0 && i < num_columns(), "column index %d out of range",
                i);
  return columns_[static_cast<size_t>(i)];
}

int EncodedTable::ColumnIndex(const std::string& name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (columns_[static_cast<size_t>(i)].name == name) return i;
  }
  return -1;
}

namespace {

/// Sorts row indices by the column's value order and assigns dense ranks,
/// giving equal values equal ranks.
template <typename Less, typename Equal>
EncodedColumn RankByOrder(const Column& column, Less less, Equal equal) {
  const int64_t n = column.size();
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), less);

  EncodedColumn out;
  out.name = column.name();
  out.ranks.assign(static_cast<size_t>(n), 0);
  int32_t next_rank = -1;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i == 0 || !equal(order[i - 1], order[i])) {
      ++next_rank;
      out.dictionary.push_back(column.GetValue(order[i]));
    }
    out.ranks[static_cast<size_t>(order[i])] = next_rank;
  }
  out.cardinality = next_rank + 1;
  return out;
}

}  // namespace

EncodedColumn EncodeColumn(const Column& column) {
  // Null handling: nulls sort first and share one rank, matching Value's
  // documented total order.
  auto null_aware = [&column](auto&& cmp_values) {
    return [&column, cmp_values](int64_t a, int64_t b) {
      bool an = column.IsNull(a);
      bool bn = column.IsNull(b);
      if (an || bn) return an && !bn;  // null < non-null
      return cmp_values(a, b);
    };
  };
  auto null_aware_eq = [&column](auto&& eq_values) {
    return [&column, eq_values](int64_t a, int64_t b) {
      bool an = column.IsNull(a);
      bool bn = column.IsNull(b);
      if (an || bn) return an == bn;
      return eq_values(a, b);
    };
  };

  switch (column.type()) {
    case DataType::kInt64: {
      const auto& v = column.ints();
      return RankByOrder(
          column,
          null_aware([&v](int64_t a, int64_t b) {
            return v[static_cast<size_t>(a)] < v[static_cast<size_t>(b)];
          }),
          null_aware_eq([&v](int64_t a, int64_t b) {
            return v[static_cast<size_t>(a)] == v[static_cast<size_t>(b)];
          }));
    }
    case DataType::kDouble: {
      const auto& v = column.doubles();
      return RankByOrder(
          column,
          null_aware([&v](int64_t a, int64_t b) {
            return v[static_cast<size_t>(a)] < v[static_cast<size_t>(b)];
          }),
          null_aware_eq([&v](int64_t a, int64_t b) {
            return v[static_cast<size_t>(a)] == v[static_cast<size_t>(b)];
          }));
    }
    case DataType::kString: {
      const auto& v = column.strings();
      return RankByOrder(
          column,
          null_aware([&v](int64_t a, int64_t b) {
            return v[static_cast<size_t>(a)] < v[static_cast<size_t>(b)];
          }),
          null_aware_eq([&v](int64_t a, int64_t b) {
            return v[static_cast<size_t>(a)] == v[static_cast<size_t>(b)];
          }));
    }
  }
  AOD_CHECK_MSG(false, "unreachable: unknown column type");
  return {};
}

EncodedTable EncodeTable(const Table& table) {
  std::vector<EncodedColumn> cols;
  cols.reserve(static_cast<size_t>(table.num_columns()));
  for (int c = 0; c < table.num_columns(); ++c) {
    cols.push_back(EncodeColumn(table.column(c)));
  }
  return EncodedTable(std::move(cols), table.num_rows());
}

EncodedTable EncodedTableFromInts(
    const std::vector<std::string>& names,
    const std::vector<std::vector<int64_t>>& columns) {
  AOD_CHECK(names.size() == columns.size());
  int64_t n = columns.empty() ? 0 : static_cast<int64_t>(columns[0].size());
  std::vector<EncodedColumn> cols;
  for (size_t c = 0; c < columns.size(); ++c) {
    AOD_CHECK_MSG(static_cast<int64_t>(columns[c].size()) == n,
                  "ragged input column %zu", c);
    Column col(names[c], DataType::kInt64);
    for (int64_t v : columns[c]) col.AppendInt(v);
    cols.push_back(EncodeColumn(col));
  }
  return EncodedTable(std::move(cols), n);
}

}  // namespace aod
