#include "data/table.h"

#include <algorithm>

#include "common/macros.h"

namespace aod {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(static_cast<size_t>(schema_.num_fields()));
  for (int i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).name, schema_.field(i).type);
  }
}

const Column& Table::column(int i) const {
  AOD_CHECK_MSG(i >= 0 && i < num_columns(), "column index %d out of range",
                i);
  return columns_[static_cast<size_t>(i)];
}

Column& Table::mutable_column(int i) {
  AOD_CHECK_MSG(i >= 0 && i < num_columns(), "column index %d out of range",
                i);
  return columns_[static_cast<size_t>(i)];
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  AOD_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
  return &columns_[static_cast<size_t>(idx)];
}

void Table::AppendRow(const std::vector<Value>& row) {
  AOD_CHECK_MSG(static_cast<int>(row.size()) == num_columns(),
                "row has %zu values, table has %d columns", row.size(),
                num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[static_cast<size_t>(i)].Append(row[static_cast<size_t>(i)]);
  }
  ++num_rows_;
}

Value Table::GetValue(int64_t row, int col) const {
  return column(col).GetValue(row);
}

void Table::SetValue(int64_t row, int col, const Value& v) {
  mutable_column(col).SetValue(row, v);
}

Table Table::FromRows(Schema schema,
                      const std::vector<std::vector<Value>>& rows) {
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendRow(row);
  return t;
}

Table Table::Head(int64_t n) const {
  n = std::min(n, num_rows_);
  Table out(schema_);
  for (int64_t r = 0; r < n; ++r) {
    std::vector<Value> row;
    row.reserve(static_cast<size_t>(num_columns()));
    for (int c = 0; c < num_columns(); ++c) row.push_back(GetValue(r, c));
    out.AppendRow(row);
  }
  return out;
}

Result<Table> Table::SelectColumns(
    const std::vector<std::string>& names) const {
  std::vector<int> indices;
  Schema out_schema;
  for (const auto& name : names) {
    AOD_ASSIGN_OR_RETURN(int idx, schema_.FieldIndex(name));
    indices.push_back(idx);
    out_schema.AddField(schema_.field(idx));
  }
  Table out(std::move(out_schema));
  for (int64_t r = 0; r < num_rows_; ++r) {
    std::vector<Value> row;
    row.reserve(indices.size());
    for (int idx : indices) row.push_back(GetValue(r, idx));
    out.AppendRow(row);
  }
  return out;
}

Table Table::SelectFirstColumns(int k) const {
  AOD_CHECK(k >= 0 && k <= num_columns());
  std::vector<std::string> names;
  for (int i = 0; i < k; ++i) names.push_back(schema_.field(i).name);
  return std::move(SelectColumns(names)).value();
}

std::string Table::ToString(int64_t limit) const {
  int64_t n = std::min(limit, num_rows_);
  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> widths;
  std::vector<std::string> header;
  for (int c = 0; c < num_columns(); ++c) {
    header.push_back(schema_.field(c).name);
    widths.push_back(header.back().size());
  }
  for (int64_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < num_columns(); ++c) {
      row.push_back(GetValue(r, c).ToString());
      widths[static_cast<size_t>(c)] =
          std::max(widths[static_cast<size_t>(c)], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string* out) {
    for (size_t c = 0; c < row.size(); ++c) {
      *out += row[c];
      out->append(widths[c] - row[c].size() + 2, ' ');
    }
    *out += "\n";
  };
  std::string out;
  emit_row(header, &out);
  for (const auto& row : cells) emit_row(row, &out);
  if (n < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - n) + " more rows)\n";
  }
  return out;
}

}  // namespace aod
