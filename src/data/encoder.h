// Order-preserving dense rank encoding.
//
// Every OD algorithm in this library needs only (a) the relative order of
// values within each attribute and (b) value equality. Encoding each column
// once into dense int32 ranks (0..cardinality-1, nulls first) makes every
// downstream step — partition products, swap detection, LNDS — pure integer
// work. This mirrors the preprocessing in FASTOD [9] and TANE [3].
#ifndef AOD_DATA_ENCODER_H_
#define AOD_DATA_ENCODER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"

namespace aod {

/// One rank-encoded attribute.
struct EncodedColumn {
  std::string name;
  /// ranks[row] in [0, cardinality); v1 < v2 implies rank(v1) < rank(v2)
  /// under Value's total order (nulls smallest, so nulls share rank 0 when
  /// present).
  std::vector<int32_t> ranks;
  /// Number of distinct values (including the null group if any).
  int32_t cardinality = 0;
  /// dictionary[rank] = the attribute value carrying that rank. Lets the
  /// repair module and debug output translate ranks back to values.
  /// Always of size `cardinality` when produced by EncodeColumn.
  std::vector<Value> dictionary;

  /// Value for `rank`; Null when no dictionary was materialized.
  Value Decode(int32_t rank) const {
    if (rank < 0 || static_cast<size_t>(rank) >= dictionary.size()) {
      return Value::Null();
    }
    return dictionary[static_cast<size_t>(rank)];
  }
};

/// A fully rank-encoded relation instance; the input type of the discovery
/// framework and all validators.
class EncodedTable {
 public:
  EncodedTable() = default;
  EncodedTable(std::vector<EncodedColumn> columns, int64_t num_rows);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }
  const EncodedColumn& column(int i) const;
  const std::vector<int32_t>& ranks(int i) const { return column(i).ranks; }
  const std::string& name(int i) const { return column(i).name; }

  /// Index of attribute `name` or -1.
  int ColumnIndex(const std::string& name) const;

 private:
  std::vector<EncodedColumn> columns_;
  int64_t num_rows_ = 0;
};

/// Encodes every column of `table`. O(n log n) per column.
EncodedTable EncodeTable(const Table& table);

/// Encodes a single column (exposed for tests and custom pipelines).
EncodedColumn EncodeColumn(const Column& column);

/// Builds an EncodedTable directly from pre-ranked integer columns — used
/// by tests and property checks where the raw-value detour adds nothing.
/// Ranks are densified (values need not be contiguous).
EncodedTable EncodedTableFromInts(
    const std::vector<std::string>& names,
    const std::vector<std::vector<int64_t>>& columns);

}  // namespace aod

#endif  // AOD_DATA_ENCODER_H_
