// Fenwick (binary indexed) tree over int64 counts.
#ifndef AOD_ALGO_FENWICK_H_
#define AOD_ALGO_FENWICK_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace aod {

/// Point-update / prefix-sum structure used by the per-element swap
/// counter (algo/inversions.h). Indices are 0-based externally.
class FenwickTree {
 public:
  explicit FenwickTree(int64_t size)
      : tree_(static_cast<size_t>(size) + 1, 0) {}

  int64_t size() const { return static_cast<int64_t>(tree_.size()) - 1; }

  /// Adds `delta` at position `index`.
  void Add(int64_t index, int64_t delta) {
    AOD_DCHECK(index >= 0 && index < size());
    for (int64_t i = index + 1; i <= size(); i += i & (-i)) {
      tree_[static_cast<size_t>(i)] += delta;
    }
  }

  /// Sum of positions [0, index] (returns 0 for index < 0).
  int64_t PrefixSum(int64_t index) const {
    if (index < 0) return 0;
    AOD_DCHECK(index < size());
    int64_t sum = 0;
    for (int64_t i = index + 1; i > 0; i -= i & (-i)) {
      sum += tree_[static_cast<size_t>(i)];
    }
    return sum;
  }

  /// Sum of positions [lo, hi] (empty if lo > hi).
  int64_t RangeSum(int64_t lo, int64_t hi) const {
    if (lo > hi) return 0;
    return PrefixSum(hi) - PrefixSum(lo - 1);
  }

  /// Total of all positions.
  int64_t Total() const { return PrefixSum(size() - 1); }

  void Reset() { std::fill(tree_.begin(), tree_.end(), 0); }

 private:
  std::vector<int64_t> tree_;
};

}  // namespace aod

#endif  // AOD_ALGO_FENWICK_H_
