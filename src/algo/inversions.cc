#include "algo/inversions.h"

#include <algorithm>
#include <cstddef>

#include "algo/fenwick.h"

namespace aod {
namespace {

int64_t MergeCount(std::vector<int32_t>& xs, std::vector<int32_t>& tmp,
                   size_t lo, size_t hi) {
  if (hi - lo <= 1) return 0;
  size_t mid = lo + (hi - lo) / 2;
  int64_t count = MergeCount(xs, tmp, lo, mid) + MergeCount(xs, tmp, mid, hi);
  size_t a = lo;
  size_t b = mid;
  size_t out = lo;
  while (a < mid && b < hi) {
    if (xs[b] < xs[a]) {
      // xs[b] jumps ahead of every remaining left element: one inversion
      // with each.
      count += static_cast<int64_t>(mid - a);
      tmp[out++] = xs[b++];
    } else {
      tmp[out++] = xs[a++];
    }
  }
  while (a < mid) tmp[out++] = xs[a++];
  while (b < hi) tmp[out++] = xs[b++];
  std::copy(tmp.begin() + static_cast<ptrdiff_t>(lo),
            tmp.begin() + static_cast<ptrdiff_t>(hi),
            xs.begin() + static_cast<ptrdiff_t>(lo));
  return count;
}

/// Maps values to dense ranks 0..k-1 preserving order.
std::vector<int32_t> CompressRanks(const std::vector<int32_t>& xs,
                                   int32_t* cardinality) {
  std::vector<int32_t> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  *cardinality = static_cast<int32_t>(sorted.size());
  std::vector<int32_t> ranks(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    ranks[i] = static_cast<int32_t>(
        std::lower_bound(sorted.begin(), sorted.end(), xs[i]) -
        sorted.begin());
  }
  return ranks;
}

}  // namespace

int64_t CountInversions(const std::vector<int32_t>& xs) {
  std::vector<int32_t> copy = xs;
  std::vector<int32_t> tmp(xs.size());
  return MergeCount(copy, tmp, 0, copy.size());
}

std::vector<int64_t> PerElementInversions(const std::vector<int32_t>& xs) {
  const size_t n = xs.size();
  std::vector<int64_t> out(n, 0);
  if (n == 0) return out;
  int32_t cardinality = 0;
  std::vector<int32_t> ranks = CompressRanks(xs, &cardinality);
  InversionScratch scratch;
  PerElementInversionsDense(ranks, cardinality, &scratch, out.data());
  return out;
}

void PerElementInversionsDense(std::span<const int32_t> xs,
                               int64_t cardinality, InversionScratch* scratch,
                               int64_t* out) {
  const size_t n = xs.size();
  if (n == 0) return;
  FenwickTree& left = scratch->left(cardinality);
  FenwickTree& right = scratch->right(cardinality);

  // Pass 1, left to right: count earlier elements strictly greater.
  for (size_t i = 0; i < n; ++i) {
    out[i] = left.RangeSum(xs[i] + 1, cardinality - 1);
    left.Add(xs[i], 1);
  }
  // Pass 2, right to left: count later elements strictly smaller.
  for (size_t i = n; i-- > 0;) {
    out[i] += right.PrefixSum(xs[i] - 1);
    right.Add(xs[i], 1);
  }
  // Retract the additions so the pooled trees come back zeroed — O(m log c)
  // instead of an O(cardinality) clear.
  for (size_t i = 0; i < n; ++i) {
    left.Add(xs[i], -1);
    right.Add(xs[i], -1);
  }
}

int64_t CountInversionsNaive(const std::vector<int32_t>& xs) {
  int64_t count = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[j] < xs[i]) ++count;
    }
  }
  return count;
}

std::vector<int64_t> PerElementInversionsNaive(
    const std::vector<int32_t>& xs) {
  std::vector<int64_t> out(xs.size(), 0);
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[j] < xs[i]) {
        ++out[i];
        ++out[j];
      }
    }
  }
  return out;
}

}  // namespace aod
