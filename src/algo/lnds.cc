#include "algo/lnds.h"

namespace aod {
namespace {

/// Shared patience-DP core. `kStrict` selects LIS (strictly increasing)
/// vs LNDS (non-decreasing).
template <bool kStrict>
int64_t LengthImpl(const std::vector<int32_t>& xs) {
  std::vector<int32_t> tails;  // tails[k] = min tail value of length k+1.
  tails.reserve(xs.size());
  for (int32_t x : xs) {
    typename std::vector<int32_t>::iterator it;
    if constexpr (kStrict) {
      it = std::lower_bound(tails.begin(), tails.end(), x);
    } else {
      it = std::upper_bound(tails.begin(), tails.end(), x);
    }
    if (it == tails.end()) {
      tails.push_back(x);
    } else {
      *it = x;
    }
  }
  return static_cast<int64_t>(tails.size());
}

template <bool kStrict>
std::vector<int32_t> IndicesImpl(const std::vector<int32_t>& xs) {
  const int32_t n = static_cast<int32_t>(xs.size());
  std::vector<int32_t> tail_values;
  std::vector<int32_t> tail_positions;
  std::vector<int32_t> prev(xs.size(), -1);
  tail_values.reserve(xs.size());
  tail_positions.reserve(xs.size());
  for (int32_t i = 0; i < n; ++i) {
    typename std::vector<int32_t>::iterator it;
    if constexpr (kStrict) {
      it = std::lower_bound(tail_values.begin(), tail_values.end(), xs[i]);
    } else {
      it = std::upper_bound(tail_values.begin(), tail_values.end(), xs[i]);
    }
    size_t k = static_cast<size_t>(it - tail_values.begin());
    prev[static_cast<size_t>(i)] =
        k == 0 ? -1 : tail_positions[k - 1];
    if (it == tail_values.end()) {
      tail_values.push_back(xs[i]);
      tail_positions.push_back(i);
    } else {
      *it = xs[i];
      tail_positions[k] = i;
    }
  }
  std::vector<int32_t> out(tail_positions.size());
  int32_t cur = tail_positions.empty() ? -1 : tail_positions.back();
  for (size_t k = tail_positions.size(); k-- > 0;) {
    out[k] = cur;
    cur = prev[static_cast<size_t>(cur)];
  }
  return out;
}

}  // namespace

int64_t LndsLength(const std::vector<int32_t>& xs) {
  return LengthImpl<false>(xs);
}

int64_t LisLength(const std::vector<int32_t>& xs) {
  return LengthImpl<true>(xs);
}

std::vector<int32_t> LndsIndices(const std::vector<int32_t>& xs) {
  return IndicesImpl<false>(xs);
}

std::vector<int32_t> LisIndices(const std::vector<int32_t>& xs) {
  return IndicesImpl<true>(xs);
}

std::vector<int32_t> LndsComplement(const std::vector<int32_t>& xs) {
  std::vector<int32_t> kept = LndsIndices(xs);
  std::vector<int32_t> out;
  out.reserve(xs.size() - kept.size());
  size_t k = 0;
  for (int32_t i = 0; i < static_cast<int32_t>(xs.size()); ++i) {
    if (k < kept.size() && kept[k] == i) {
      ++k;
    } else {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace aod
