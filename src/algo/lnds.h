// Longest non-decreasing / increasing subsequence.
//
// The heart of the paper's Algorithm 2: after sorting an equivalence class
// by [A ASC, B ASC], the tuples *not* on a longest non-decreasing
// subsequence (LNDS) of the B-projection form a minimal removal set for
// the AOC candidate (paper Thm. 3.3). The patience-style DP below is the
// classic O(m log m) method descending from Fredman [2].
#ifndef AOD_ALGO_LNDS_H_
#define AOD_ALGO_LNDS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace aod {

/// Length of a longest non-decreasing subsequence of `xs`.
int64_t LndsLength(const std::vector<int32_t>& xs);

/// Length of a longest strictly increasing subsequence of `xs`.
int64_t LisLength(const std::vector<int32_t>& xs);

/// Positions (ascending) of one longest non-decreasing subsequence.
std::vector<int32_t> LndsIndices(const std::vector<int32_t>& xs);

/// Positions (ascending) of one longest strictly increasing subsequence.
std::vector<int32_t> LisIndices(const std::vector<int32_t>& xs);

/// Positions NOT on the returned LNDS — i.e. the removal set over local
/// positions. Equivalent to complementing LndsIndices but fused to avoid
/// a second pass.
std::vector<int32_t> LndsComplement(const std::vector<int32_t>& xs);

/// Generic LNDS over an index range with a custom `leq(a, b)` meaning
/// xs[a] <= xs[b] in the caller's element order. Needed by the list-based
/// OD validator where elements are lexicographic tuples. `leq` must be a
/// total preorder. Returns positions (ascending) of one LNDS of the
/// sequence 0..n-1.
///
/// O(m log m) comparisons: the tails array is maintained over positions,
/// and binary search uses `leq` only.
template <typename Leq>
std::vector<int32_t> LndsIndicesBy(int32_t n, Leq leq) {
  // tails[k] = position of the smallest-possible tail of a non-decreasing
  // subsequence of length k+1; prev[] threads the reconstruction.
  std::vector<int32_t> tails;
  std::vector<int32_t> prev(static_cast<size_t>(n), -1);
  tails.reserve(static_cast<size_t>(n));
  for (int32_t i = 0; i < n; ++i) {
    // Find first k with xs[tails[k]] > xs[i], i.e. NOT leq(tails[k], i).
    auto it = std::upper_bound(tails.begin(), tails.end(), i,
                               [&](int32_t pos, int32_t tail) {
                                 return !leq(tail, pos);
                               });
    if (it == tails.end()) {
      prev[static_cast<size_t>(i)] = tails.empty() ? -1 : tails.back();
      tails.push_back(i);
    } else {
      prev[static_cast<size_t>(i)] =
          it == tails.begin() ? -1 : *(it - 1);
      *it = i;
    }
  }
  std::vector<int32_t> out(tails.size());
  int32_t cur = tails.empty() ? -1 : tails.back();
  for (size_t k = tails.size(); k-- > 0;) {
    out[k] = cur;
    cur = prev[static_cast<size_t>(cur)];
  }
  return out;
}

}  // namespace aod

#endif  // AOD_ALGO_LNDS_H_
