// Inversion counting.
//
// Used by the iterative validator (paper Alg. 1): after sorting a class by
// [A ASC, B ASC], the number of swaps a tuple participates in equals the
// number of strict inversions of the B-projection it participates in
// (equal-A pairs cannot invert because ties are broken by B).
#ifndef AOD_ALGO_INVERSIONS_H_
#define AOD_ALGO_INVERSIONS_H_

#include <cstdint>
#include <vector>

namespace aod {

/// Total number of inversions: pairs i < j with xs[j] < xs[i].
/// Merge-sort based, O(m log m) — the paper's `countInversions`.
int64_t CountInversions(const std::vector<int32_t>& xs);

/// Per-element inversion participation: out[i] = #{j < i : xs[j] > xs[i]}
///                                              + #{j > i : xs[j] < xs[i]}.
/// Two Fenwick-tree passes over rank-compressed values, O(m log m).
/// (Σ out[i] == 2 * CountInversions(xs).)
std::vector<int64_t> PerElementInversions(const std::vector<int32_t>& xs);

/// O(m²) reference implementations for property tests.
int64_t CountInversionsNaive(const std::vector<int32_t>& xs);
std::vector<int64_t> PerElementInversionsNaive(const std::vector<int32_t>& xs);

}  // namespace aod

#endif  // AOD_ALGO_INVERSIONS_H_
