// Inversion counting.
//
// Used by the iterative validator (paper Alg. 1): after sorting a class by
// [A ASC, B ASC], the number of swaps a tuple participates in equals the
// number of strict inversions of the B-projection it participates in
// (equal-A pairs cannot invert because ties are broken by B).
#ifndef AOD_ALGO_INVERSIONS_H_
#define AOD_ALGO_INVERSIONS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "algo/fenwick.h"

namespace aod {

/// Total number of inversions: pairs i < j with xs[j] < xs[i].
/// Merge-sort based, O(m log m) — the paper's `countInversions`.
int64_t CountInversions(const std::vector<int32_t>& xs);

/// Reusable Fenwick trees for PerElementInversionsDense. Trees grow
/// monotonically to the largest cardinality seen and are zero between
/// calls (the counting passes undo their own additions), so a pooled
/// instance makes repeated counting allocation-free.
class InversionScratch {
 public:
  /// Both trees, grown to cover values [0, cardinality).
  FenwickTree& left(int64_t cardinality) {
    if (left_.size() < cardinality) left_ = FenwickTree(cardinality);
    return left_;
  }
  FenwickTree& right(int64_t cardinality) {
    if (right_.size() < cardinality) right_ = FenwickTree(cardinality);
    return right_;
  }

 private:
  FenwickTree left_{0};
  FenwickTree right_{0};
};

/// Per-element inversion participation: out[i] = #{j < i : xs[j] > xs[i]}
///                                              + #{j > i : xs[j] < xs[i]}.
/// Two Fenwick-tree passes over rank-compressed values, O(m log m).
/// (Σ out[i] == 2 * CountInversions(xs).)
std::vector<int64_t> PerElementInversions(const std::vector<int32_t>& xs);

/// Allocation-free variant for callers that already hold dense values:
/// every xs[i] must lie in [0, cardinality). Writes xs.size() counts to
/// `out` and leaves `scratch`'s trees zeroed (additions are retracted in
/// a final pass). O(m log cardinality), no heap allocation beyond tree
/// growth inside `scratch`.
void PerElementInversionsDense(std::span<const int32_t> xs,
                               int64_t cardinality, InversionScratch* scratch,
                               int64_t* out);

/// O(m²) reference implementations for property tests.
int64_t CountInversionsNaive(const std::vector<int32_t>& xs);
std::vector<int64_t> PerElementInversionsNaive(const std::vector<int32_t>& xs);

}  // namespace aod

#endif  // AOD_ALGO_INVERSIONS_H_
