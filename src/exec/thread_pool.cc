#include "exec/thread_pool.h"

#include <utility>

namespace aod {
namespace exec {
namespace {

/// Which pool (if any) owns the current thread, and its index there.
struct ThreadRegistration {
  const ThreadPool* pool = nullptr;
  int index = -1;
};

thread_local ThreadRegistration tls_registration;

}  // namespace

int ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = HardwareConcurrency();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
  }
  park_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  AOD_DCHECK(fn != nullptr);
  int target;
  const int self = WorkerIndex();
  if (self >= 0) {
    target = self;
  } else {
    target = static_cast<int>(
        submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
        static_cast<uint32_t>(workers_.size()));
  }
  {
    std::lock_guard<std::mutex> lock(workers_[static_cast<size_t>(target)]
                                         ->mutex);
    workers_[static_cast<size_t>(target)]->tasks.push_back(std::move(fn));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Empty critical section, deliberately: a worker that saw queued_ == 0
    // in its park predicate did so while holding park_mutex_. Acquiring it
    // here orders this increment either before that check (the worker sees
    // the task and never parks) or after the worker has started waiting
    // (the notify below wakes it). Without it the notify can be lost.
    std::lock_guard<std::mutex> lock(park_mutex_);
  }
  park_cv_.notify_one();
}

int ThreadPool::WorkerIndex() const {
  return tls_registration.pool == this ? tls_registration.index : -1;
}

bool ThreadPool::PopLocal(int index, std::function<void()>* fn) {
  Worker& worker = *workers_[static_cast<size_t>(index)];
  std::lock_guard<std::mutex> lock(worker.mutex);
  if (worker.tasks.empty()) return false;
  *fn = std::move(worker.tasks.back());
  worker.tasks.pop_back();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool ThreadPool::StealInto(int thief_index, std::function<void()>* fn) {
  const int n = num_workers();
  // Start scanning at the neighbour so thieves spread over victims instead
  // of all hammering worker 0.
  for (int offset = 1; offset <= n; ++offset) {
    const int victim = (thief_index + offset) % n;
    if (victim == thief_index) continue;
    std::deque<std::function<void()>> loot;
    {
      Worker& w = *workers_[static_cast<size_t>(victim)];
      std::lock_guard<std::mutex> lock(w.mutex);
      if (w.tasks.empty()) continue;
      const size_t take = (w.tasks.size() + 1) / 2;
      for (size_t i = 0; i < take; ++i) {
        loot.push_back(std::move(w.tasks.front()));
        w.tasks.pop_front();
      }
    }
    *fn = std::move(loot.front());
    loot.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    if (!loot.empty()) {
      Worker& mine = *workers_[static_cast<size_t>(thief_index)];
      std::lock_guard<std::mutex> lock(mine.mutex);
      while (!loot.empty()) {
        mine.tasks.push_back(std::move(loot.front()));
        loot.pop_front();
      }
    }
    return true;
  }
  return false;
}

bool ThreadPool::TakeAny(std::function<void()>* fn) {
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    std::lock_guard<std::mutex> lock(w.mutex);
    if (w.tasks.empty()) continue;
    *fn = std::move(w.tasks.front());
    w.tasks.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool ThreadPool::RunOneTask() {
  std::function<void()> fn;
  const int self = WorkerIndex();
  bool got = self >= 0 ? (PopLocal(self, &fn) || StealInto(self, &fn))
                       : TakeAny(&fn);
  if (!got) return false;
  fn();
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  tls_registration = {this, index};
  std::function<void()> fn;
  while (true) {
    if (PopLocal(index, &fn) || StealInto(index, &fn)) {
      fn();
      fn = nullptr;
      continue;
    }
    // Queues drained: exit on stop (a stopping pool finishes queued work
    // first — see the loop order; a task that resubmits during shutdown
    // lands in a deque this scan re-reads before the stop check, so it
    // cannot be stranded), otherwise park until new work arrives. The
    // wait predicate runs under park_mutex_ — the handshake that makes
    // the relaxed queued_ decrements safe (see thread_pool.h).
    if (stop_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(park_mutex_);
    park_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

}  // namespace exec
}  // namespace aod
