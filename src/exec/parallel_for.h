// Data-parallel index loop with dynamic load balancing and cooperative
// cancellation.
//
// Iterations are claimed from a shared atomic cursor in `grain`-sized
// chunks, so imbalance is bounded by one chunk regardless of how skewed
// the per-iteration cost is — the property the discovery driver needs to
// keep a single huge lattice node from stalling a level. The `cancel`
// hook is polled between chunks (cooperative deadline checks): once it
// returns true no new chunk is started anywhere, but in-flight chunks
// finish, so an iteration is always either fully executed or not at all.
#ifndef AOD_EXEC_PARALLEL_FOR_H_
#define AOD_EXEC_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>

#include "exec/thread_pool.h"

namespace aod {
namespace exec {

struct ParallelForOptions {
  /// Iterations claimed per cursor bump. 1 gives perfect balancing; raise
  /// it when the per-iteration body is too cheap to amortize the claim.
  int64_t grain = 1;
  /// Polled before each chunk on every participating thread; returning
  /// true stops further chunks from starting (in-flight chunks complete).
  std::function<bool()> cancel;
};

/// Runs body(i) for i in [begin, end) on the pool (inline when `pool` is
/// nullptr or single-worker). Returns the number of iterations executed:
/// end - begin unless cancelled early. The body must not throw; bodies
/// writing only to their own index's output slot need no synchronization
/// — the internal join publishes their writes to the caller.
int64_t ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                    const std::function<void(int64_t)>& body,
                    const ParallelForOptions& options = {});

}  // namespace exec
}  // namespace aod

#endif  // AOD_EXEC_PARALLEL_FOR_H_
