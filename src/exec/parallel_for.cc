#include "exec/parallel_for.h"

#include <algorithm>
#include <atomic>

#include "common/macros.h"
#include "exec/task_group.h"

namespace aod {
namespace exec {

int64_t ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                    const std::function<void(int64_t)>& body,
                    const ParallelForOptions& options) {
  const int64_t n = end - begin;
  if (n <= 0) return 0;
  const int64_t grain = std::max<int64_t>(1, options.grain);
  const int workers = pool == nullptr ? 1 : pool->num_workers();

  if (workers <= 1 || n <= grain) {
    int64_t executed = 0;
    for (int64_t i = begin; i < end; i += grain) {
      if (options.cancel && options.cancel()) break;
      const int64_t stop = std::min(end, i + grain);
      for (int64_t j = i; j < stop; ++j) body(j);
      executed += stop - i;
    }
    return executed;
  }

  std::atomic<int64_t> cursor{begin};
  std::atomic<int64_t> executed{0};
  std::atomic<bool> cancelled{false};
  auto run_chunks = [&] {
    while (true) {
      if (cancelled.load(std::memory_order_relaxed)) return;
      if (options.cancel && options.cancel()) {
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
      const int64_t i = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (i >= end) return;
      const int64_t stop = std::min(end, i + grain);
      for (int64_t j = i; j < stop; ++j) body(j);
      executed.fetch_add(stop - i, std::memory_order_relaxed);
    }
  };

  const int64_t max_tasks = (n + grain - 1) / grain;
  const int tasks = static_cast<int>(
      std::min<int64_t>(workers, max_tasks));
  TaskGroup group(pool);
  // The caller participates too (tasks - 1 forks + one local run): with a
  // busy pool the loop still makes progress on the calling thread.
  for (int t = 0; t < tasks - 1; ++t) group.Run(run_chunks);
  run_chunks();
  group.Wait();
  return executed.load(std::memory_order_acquire);
}

}  // namespace exec
}  // namespace aod
