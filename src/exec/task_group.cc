#include "exec/task_group.h"

#include <chrono>
#include <utility>

namespace aod {
namespace exec {

void TaskGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr || pool_->num_workers() == 0) {
    fn();
    return;
  }
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // The decrement happens under mutex_ so the joiner cannot observe 0,
    // return, and destroy the group while this task is still about to
    // touch mutex_/done_cv_ — Wait() re-acquires mutex_ before returning,
    // which orders its exit after this critical section.
    std::lock_guard<std::mutex> lock(mutex_);
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      done_cv_.notify_all();
    }
  });
}

void TaskGroup::Wait() {
  while (outstanding_.load(std::memory_order_acquire) > 0) {
    // Help instead of blocking. When nothing is runnable (our tasks are
    // all mid-flight on other workers) park briefly; the timeout guards
    // the race where the last task finishes between the load above and
    // the wait below.
    if (pool_ != nullptr && pool_->RunOneTask()) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
      return outstanding_.load(std::memory_order_acquire) == 0;
    });
  }
  // The final task decremented outstanding_ inside mutex_; acquiring it
  // here means that task has left (or not yet entered) its critical
  // section, so the group is safe to destroy once we return.
  std::lock_guard<std::mutex> lock(mutex_);
}

}  // namespace exec
}  // namespace aod
