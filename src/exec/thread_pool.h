// Persistent work-stealing thread pool — the execution layer under the
// discovery driver (see ARCHITECTURE.md).
//
// Validator work is embarrassingly parallel but irregular: one lattice
// node can carry hundreds of candidates while its neighbours carry none,
// and class-size distributions make individual validations span orders of
// magnitude. Static chunking (the pre-refactor driver spawned raw
// std::threads with one contiguous chunk each) serializes every level on
// its slowest chunk. This pool keeps workers alive across levels and
// discovery calls, gives each worker its own deque (LIFO for locality),
// and rebalances by stealing half of a victim's queue at a time, so a
// straggler chunk cannot exist by construction.
#ifndef AOD_EXEC_THREAD_POOL_H_
#define AOD_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace aod {
namespace exec {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means HardwareConcurrency().
  explicit ThreadPool(int num_threads = 0);

  /// Drains every queued task, then joins the workers. Do not destroy a
  /// pool while another thread may still Submit to it.
  ~ThreadPool();

  AOD_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// max(1, std::thread::hardware_concurrency()).
  static int HardwareConcurrency();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. From a worker thread of this pool the task goes to
  /// that worker's own deque (LIFO, cache-warm); from outside, deques are
  /// fed round-robin. Never blocks.
  void Submit(std::function<void()> fn);

  /// Runs one queued task on the calling thread if any is available.
  /// Callable from any thread; TaskGroup::Wait uses it so a joiner helps
  /// instead of blocking (which also makes nested fork/join on the same
  /// pool deadlock-free). Returns false when every deque is empty.
  bool RunOneTask();

  /// Index of the calling thread within this pool in [0, num_workers()),
  /// or -1 when called from a thread this pool does not own. Stable for
  /// the lifetime of the pool — usable as a per-worker scratch slot key.
  int WorkerIndex() const;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int index);
  /// Pops from the calling worker's own deque (back = most recently
  /// pushed). Returns false when empty.
  bool PopLocal(int index, std::function<void()>* fn);
  /// Steals roughly half of some victim's deque (from the front — the
  /// oldest, coldest tasks), runs nothing, requeues the surplus onto the
  /// thief's deque and hands one task back. Returns false when every
  /// victim is empty.
  bool StealInto(int thief_index, std::function<void()>* fn);
  /// Takes a single task from any deque (used by non-worker helpers).
  bool TakeAny(std::function<void()>* fn);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Number of tasks currently sitting in deques (plus any steal-in-flight
  // surplus, counted until requeued); the park/wake predicate.
  //
  // Ordering audit (the shutdown/wakeup protocol): the predicate loads in
  // WorkerLoop pair with the park_mutex_ handshake, NOT with these
  // counter updates, so the consumer-side fetch_subs may be relaxed. Two
  // facts make a lost wakeup impossible:
  //  1. A worker evaluates its park predicate while *holding* park_mutex_
  //     (both before sleeping and on every wake). Submit increments
  //     queued_ (and ~ThreadPool sets stop_) strictly before taking and
  //     releasing park_mutex_ and notifying, so either the worker's
  //     predicate run ordered *after* that critical section — and then it
  //     observes the store through the mutex — or it ordered before, the
  //     worker is already committed to waiting, and the notify wakes it.
  //  2. Relaxed decrements can only make a reader observe queued_ too
  //     HIGH, never too low (an RMW always reads the latest value in the
  //     counter's modification order, and every increment is ordered by
  //     the handshake above). A stale-high read merely costs one spurious
  //     wake/rescan; a strand would require a stale-low read, which no
  //     interleaving produces.
  // The same reasoning covers stop() racing a concurrent submit from a
  // pool task: the submitting worker enqueues to its own deque and the
  // WorkerLoop re-scans all deques before it re-checks stop_, so a
  // stopping pool drains resubmissions before any worker can exit.
  // tests/exec_test.cc (StartSubmitStopLoopNeverStrandsATask) hammers
  // exactly this window.
  std::atomic<int64_t> queued_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint32_t> submit_cursor_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
};

}  // namespace exec
}  // namespace aod

#endif  // AOD_EXEC_THREAD_POOL_H_
