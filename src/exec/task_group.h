// Fork/join on a ThreadPool.
//
// A TaskGroup counts the tasks forked through it; Wait() returns once all
// of them have finished. The joiner does not block idly: it helps by
// running queued pool tasks, which keeps all cores busy and makes nested
// fork/join (a pool task that itself forks and joins a group) safe on a
// pool of any size.
#ifndef AOD_EXEC_TASK_GROUP_H_
#define AOD_EXEC_TASK_GROUP_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>

#include "common/macros.h"
#include "exec/thread_pool.h"

namespace aod {
namespace exec {

class TaskGroup {
 public:
  /// `pool` may be nullptr, in which case Run() executes inline — callers
  /// can use one code path for serial and parallel execution.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Joins outstanding tasks; a group must not outlive its pool.
  ~TaskGroup() { Wait(); }

  AOD_DISALLOW_COPY_AND_ASSIGN(TaskGroup);

  /// Forks `fn` onto the pool (or runs it inline without a pool). The
  /// callable must not throw.
  void Run(std::function<void()> fn);

  /// Returns once every task forked through this group has finished.
  /// Helps run pool tasks while waiting.
  void Wait();

 private:
  ThreadPool* pool_;
  std::atomic<int64_t> outstanding_{0};
  std::mutex mutex_;
  std::condition_variable done_cv_;
};

}  // namespace exec
}  // namespace aod

#endif  // AOD_EXEC_TASK_GROUP_H_
