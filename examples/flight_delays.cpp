// Scenario: mining delay-propagation rules from flight data.
//
// The paper's introduction motivates AODs with rules that hold "with
// exceptions" in real operational data. This example generates the
// synthetic flight dataset (see gen/flight_generator.h), runs exact and
// approximate discovery side by side, and interprets the headline AOC
// arrDelay ~ lateAircraftDelay — "delays in arrival are generally due to
// the aircraft, not security or weather" (paper Exp-4).
//
//   ./examples/flight_delays [rows]
#include <cstdio>
#include <cstdlib>

#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"

using namespace aod;

int main(int argc, char** argv) {
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 20000;
  std::printf("generating flight dataset: %lld rows x 10 attributes...\n",
              static_cast<long long>(rows));
  Table table = GenerateFlightTable(rows, 10, 42);
  EncodedTable enc = EncodeTable(table);

  // Exact discovery: the dirty-but-meaningful rules are invisible.
  DiscoveryOptions exact;
  exact.validator = ValidatorKind::kExact;
  DiscoveryResult exact_result = DiscoverOds(enc, exact);

  // Approximate discovery at the paper's default 10% threshold.
  DiscoveryOptions approx;
  approx.validator = ValidatorKind::kOptimal;
  approx.epsilon = 0.10;
  DiscoveryResult approx_result = DiscoverOds(enc, approx);
  approx_result.SortByInterestingness();

  std::printf("exact discovery:        %4zu OCs, %4zu OFDs (%.2fs)\n",
              exact_result.Ocs().size(), exact_result.Ofds().size(),
              exact_result.stats.total_seconds);
  std::printf("approximate discovery:  %4zu AOCs, %4zu AOFDs (%.2fs)\n",
              approx_result.Ocs().size(), approx_result.Ofds().size(),
              approx_result.stats.total_seconds);

  std::printf("\ntop approximate OCs by interestingness:\n");
  size_t shown = 0;
  for (const DiscoveredDependency* d : approx_result.Ocs()) {
    if (shown++ >= 10) break;
    std::printf("  score=%.4f  e=%5.2f%%  level=%d  %s\n",
                d->interestingness, 100.0 * d->error, d->level,
                d->Oc().ToString(enc).c_str());
  }

  // Zoom in on the headline dependency.
  int arr = enc.ColumnIndex("arrDelay");
  int late = enc.ColumnIndex("lateAircraftDelay");
  StrippedPartition whole = StrippedPartition::WholeRelation(enc.num_rows());
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, arr, late, 1.0, enc.num_rows());
  std::printf("\narrDelay ~ lateAircraftDelay: e = %.2f%%"
              " (paper reports 9.5%% on BTS data)\n",
              100.0 * out.approx_factor);
  std::printf("interpretation: arrival delays are ordered with"
              " late-aircraft delays for %.1f%% of flights — delays are"
              " generally inherited from the inbound aircraft, with"
              " security/weather exceptions.\n",
              100.0 * (1.0 - out.approx_factor));
  return 0;
}
