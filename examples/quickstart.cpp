// Quickstart: the paper's Table 1, end to end.
//
// Builds the employee-salaries table from the paper's introduction,
// walks through its worked examples (swaps, splits, minimal removal
// sets, the greedy overestimate), and runs full approximate OD
// discovery — a tour of the public API in ~100 lines.
//
//   ./examples/quickstart
#include <cstdio>

#include "data/encoder.h"
#include "data/table.h"
#include "exec/thread_pool.h"
#include "od/aoc_iterative_validator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"
#include "od/oc_validator.h"
#include "partition/stripped_partition.h"

using namespace aod;

int main() {
  // --- 1. Build the paper's Table 1. -----------------------------------
  Schema schema({{"pos", DataType::kString},
                 {"exp", DataType::kInt64},
                 {"sal", DataType::kInt64},
                 {"taxGrp", DataType::kString},
                 {"perc", DataType::kInt64},
                 {"tax", DataType::kDouble},
                 {"bonus", DataType::kInt64}});
  Table table = Table::FromRows(
      schema,
      {
          {"sec", int64_t{1}, int64_t{20}, "A", int64_t{10}, 2.0, int64_t{1}},
          {"sec", int64_t{3}, int64_t{25}, "A", int64_t{10}, 2.5, int64_t{1}},
          {"dev", int64_t{1}, int64_t{30}, "A", int64_t{1}, 0.3, int64_t{3}},
          {"sec", int64_t{5}, int64_t{40}, "B", int64_t{30}, 12.0,
           int64_t{2}},
          {"dev", int64_t{3}, int64_t{50}, "B", int64_t{3}, 1.5, int64_t{4}},
          {"dev", int64_t{5}, int64_t{55}, "B", int64_t{30}, 16.5,
           int64_t{4}},
          {"dev", int64_t{5}, int64_t{60}, "B", int64_t{3}, 1.8, int64_t{4}},
          {"dev", int64_t{-1}, int64_t{90}, "C", int64_t{8}, 7.2,
           int64_t{7}},
          {"dir", int64_t{8}, int64_t{200}, "C", int64_t{8}, 16.0,
           int64_t{10}},
      });
  std::printf("Table 1 (employee salaries):\n%s\n",
              table.ToString().c_str());

  // --- 2. Encode once; everything downstream is integer ranks. ---------
  EncodedTable enc = EncodeTable(table);
  int sal = enc.ColumnIndex("sal");
  int tax = enc.ColumnIndex("tax");
  int tax_grp = enc.ColumnIndex("taxGrp");

  // --- 3. Exact validation (paper Example 2.4). ------------------------
  StrippedPartition whole = StrippedPartition::WholeRelation(enc.num_rows());
  std::printf("OC sal ~ taxGrp holds exactly:  %s\n",
              ValidateOcExact(enc, whole, sal, tax_grp) ? "yes" : "no");
  std::printf("OC sal ~ tax holds exactly:     %s   (perc data-entry"
              " errors)\n",
              ValidateOcExact(enc, whole, sal, tax) ? "yes" : "no");

  // --- 4. Approximate validation (Examples 2.15, 3.1, 3.2). ------------
  ValidatorOptions opts;
  opts.collect_removal_set = true;
  opts.early_exit = false;
  ValidationOutcome optimal =
      ValidateAocOptimal(enc, whole, sal, tax, 1.0, enc.num_rows(), opts);
  ValidationOutcome iterative =
      ValidateAocIterative(enc, whole, sal, tax, 1.0, enc.num_rows(), opts);
  std::printf("\nAOC sal ~ tax:\n");
  std::printf("  minimal removal set (Alg. 2): %lld tuples, e = %.2f"
              "  -> rows:",
              static_cast<long long>(optimal.removal_size),
              optimal.approx_factor);
  for (int32_t r : optimal.removal_rows) std::printf(" t%d", r + 1);
  std::printf("   (paper: {t1, t2, t4, t6}, 4/9 = 0.44)\n");
  std::printf("  greedy removal set (Alg. 1):  %lld tuples, e = %.2f"
              "   (paper: 5/9 = 0.56 — overestimated!)\n",
              static_cast<long long>(iterative.removal_size),
              iterative.approx_factor);

  // --- 5. Full discovery at a 45%% threshold. --------------------------
  DiscoveryOptions options;
  options.epsilon = 0.45;
  options.validator = ValidatorKind::kOptimal;
  DiscoveryResult result = DiscoverOds(enc, options);
  result.SortByInterestingness();
  std::printf("\nDiscovered approximate dependencies (eps = 0.45):\n%s",
              result.Summary(enc, 12).c_str());
  std::printf("\nStats:\n%s", result.stats.ToString().c_str());

  // --- 6. The same run on a reusable thread pool. ----------------------
  // Worth it on large tables; on 9 rows it only demonstrates the API.
  // The pool outlives the call and can serve any number of DiscoverOds
  // invocations; results are identical to the serial run by the
  // determinism contract (ARCHITECTURE.md).
  exec::ThreadPool pool(0);  // 0 = one worker per hardware thread
  options.pool = &pool;
  DiscoveryResult parallel = DiscoverOds(enc, options);
  std::printf("\nparallel rerun on %d worker(s): %zu OCs, %zu OFDs —"
              " identical to the serial run: %s\n",
              pool.num_workers(), parallel.Ocs().size(),
              parallel.Ofds().size(),
              parallel.Ocs().size() == result.Ocs().size() &&
                      parallel.Ofds().size() == result.Ofds().size()
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
