// Scenario: eliminating sorts in a query optimizer with discovered ODs.
//
// The founding motivation for order dependencies (Szlichta et al. [12])
// is query optimization: if the optimizer knows that X orders Y, a plan
// whose input is already sorted on X can satisfy ORDER BY Y without a
// sort operator. This example discovers exact ODs on synthetic flight
// data and answers "can ORDER BY <target> reuse a clustering on
// <available>?" from the discovered dependency set — including
// descending targets via bidirectional OCs.
//
//   ./examples/sort_elimination [rows]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/encoder.h"
#include "gen/flight_generator.h"
#include "od/discovery.h"

using namespace aod;

namespace {

/// True when a discovered exact OC {}: avail ~ target and OFD
/// {avail}: [] -> target exist, i.e. the canonical decomposition of the
/// list-based OD [avail] -> [target] holds (paper Sec. 2.2).
bool CanEliminateSort(const DiscoveryResult& result, int available,
                      int target, bool target_descending) {
  bool oc = false;
  for (const DiscoveredDependency* d : result.Ocs()) {
    if (d->context.empty() && d->opposite == target_descending &&
        ((d->a == available && d->b == target) ||
         (d->a == target && d->b == available))) {
      oc = true;
    }
  }
  if (!oc) return false;
  for (const DiscoveredDependency* d : result.Ofds()) {
    if (d->context == AttributeSet::Of({available}) && d->a == target) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 10000;
  Table table = GenerateFlightTable(rows, 20, 42);
  EncodedTable enc = EncodeTable(table);

  // Exact, bidirectional discovery: sort elimination needs dependencies
  // that hold without exception.
  DiscoveryOptions options;
  options.validator = ValidatorKind::kExact;
  options.bidirectional = true;
  DiscoveryResult result = DiscoverOds(enc, options);
  std::printf("discovered %zu exact OCs and %zu OFDs on %lld rows\n\n",
              result.Ocs().size(), result.Ofds().size(),
              static_cast<long long>(rows));

  struct Query {
    const char* available;  // physical clustering of the input
    const char* target;     // ORDER BY column
    bool descending;
  };
  const std::vector<Query> kQueries = {
      {"month", "quarter", false},   // quarter = monotone in month
      {"quarter", "month", false},   // the converse FD fails
      {"depDelay", "arrDelay", false},  // approximate only: must sort
      {"originAirportId", "elevation", false},  // FD yes, order no
  };
  for (const auto& q : kQueries) {
    int avail = enc.ColumnIndex(q.available);
    int target = enc.ColumnIndex(q.target);
    bool ok = CanEliminateSort(result, avail, target, q.descending);
    std::printf("input sorted by %-16s ORDER BY %s%-18s -> %s\n",
                q.available, q.descending ? "desc " : "", q.target,
                ok ? "sort ELIMINATED (OD holds)"
                   : "sort required");
  }

  std::printf(
      "\nNote: depDelay orders arrDelay only approximately (about 8%% of\n"
      "flights violate it), so the optimizer must keep the sort — but a\n"
      "data-cleaning pipeline could use exactly that AOD to flag the\n"
      "violating flights (see examples/data_cleaning).\n");
  return 0;
}
