// Scenario: profile any CSV file for approximate order dependencies.
//
// A command-line profiler over the public API — point it at a CSV export
// and it prints the discovered AOCs/AOFDs ranked by interestingness,
// optionally composing full ODs and exporting machine-readable results.
// With no file argument it demonstrates itself on an embedded sample.
//
//   ./examples/csv_discovery [file.csv] [options]
//     --epsilon=0.10        approximation threshold
//     --kinds=oc,ofd        dependency kinds to discover — any comma
//                           subset of oc, ofd, fd, afd; each kind's
//                           results are identical whether discovered
//                           alone or together
//     --afd-error=0.05      maximum g1 error for the afd kind
//     --top-k=N             keep only the N highest-ranked dependencies
//                           across all kinds (0 = all; deterministic
//                           for any thread/shard count)
//     --max-rows=N          read only the first N data rows
//     --validator=optimal   optimal | iterative | exact
//     --bidirectional       also search A asc ~ B desc polarity
//     --threads=N           parallel validation workers (0 = all cores;
//                           results are identical for any thread count)
//     --no-planner          derive partitions by the fixed rule instead
//                           of the cost-based planner (identical output)
//     --memory-budget-mb=N  partition cache byte budget; coldest derived
//                           partitions are evicted and re-derived on
//                           demand (identical output)
//     --shards=N            distribute validation over N logical shard
//                           runners; partitions and results cross the
//                           shard seam in the checksummed CSR wire
//                           format (identical output; 0 = unsharded)
//     --shard-transport=T   inproc | socket | process: how the shard
//                           seam moves bytes (identical output; process
//                           spawns shard_runner_main per shard)
//     --shard-runner=PATH   shard_runner_main binary for the process
//                           transport (default: $AOD_SHARD_RUNNER)
//     --server=HOST:PORT    don't run locally: submit the job to a
//                           running discovery_serve daemon and await
//                           the result (identical output; deadline
//                           rides --deadline)
//     --deadline=S          server-side wall-clock budget for --server
//                           jobs (0 = none)
//     --ods                 compose and print ODs from the OC/OFD parts
//     --json=out.json       write the result as JSON
//     --csv=out.csv         write the result as flat CSV
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/csv_parser.h"
#include "data/encoder.h"
#include "od/discovery.h"
#include "od/od_assembly.h"
#include "od/result_io.h"
#include "partition/partition_cache.h"
#include "serve/client.h"

using namespace aod;

namespace {

constexpr char kEmbeddedSample[] =
    "orderId,customer,region,price,priceWithTax,shipDays\n"
    "1,ada,east,100,108,2\n"
    "2,bob,west,250,270,5\n"
    "3,cyd,east,80,86,2\n"
    "4,dee,west,120,130,3\n"
    "5,eve,east,300,324,6\n"
    "6,fin,west,90,97,2\n"
    "7,gil,east,150,162,31\n"  // <- shipDays outlier breaks exact OD
    "8,hal,west,200,216,4\n"
    "9,ivy,east,400,432,8\n"
    "10,joe,west,60,65,1\n";

struct Args {
  std::string file;
  double epsilon = 0.10;
  DependencyKindSet kinds = DependencyKindSet::OdDefault();
  /// Set when --kinds was passed; gates the per-kind count report so the
  /// default output stays byte-identical to earlier releases.
  bool kinds_explicit = false;
  double afd_error = 0.05;
  int64_t top_k = 0;
  int64_t max_rows = -1;
  ValidatorKind validator = ValidatorKind::kOptimal;
  bool bidirectional = false;
  int threads = 1;
  bool planner = true;
  int64_t memory_budget_mb = 0;
  int shards = 0;
  ShardTransport shard_transport = ShardTransport::kInProcess;
  std::string shard_runner;
  std::string server_host;
  uint16_t server_port = 0;
  double deadline_seconds = 0.0;
  bool assemble_ods = false;
  std::string json_path;
  std::string csv_path;
  bool ok = true;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      size_t len = std::string(prefix).size();
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--epsilon=")) {
      args.epsilon = std::atof(v);
    } else if (const char* v = value_of("--kinds=")) {
      Result<DependencyKindSet> kinds = DependencyKindSet::Parse(v);
      if (!kinds.ok()) {
        std::fprintf(stderr, "--kinds: %s\n",
                     kinds.status().ToString().c_str());
        args.ok = false;
      } else {
        args.kinds = *kinds;
        args.kinds_explicit = true;
      }
    } else if (const char* v = value_of("--afd-error=")) {
      args.afd_error = std::atof(v);
      if (!(args.afd_error >= 0.0 && args.afd_error <= 1.0)) {
        std::fprintf(stderr, "--afd-error: want a g1 fraction in [0, 1],"
                             " got '%s'\n", v);
        args.ok = false;
      }
    } else if (const char* v = value_of("--top-k=")) {
      args.top_k = std::atoll(v);
      if (args.top_k < 0) {
        std::fprintf(stderr, "--top-k: want >= 0 (0 = all), got '%s'\n", v);
        args.ok = false;
      }
    } else if (const char* v = value_of("--max-rows=")) {
      args.max_rows = std::atoll(v);
    } else if (const char* v = value_of("--validator=")) {
      std::string kind = v;
      if (kind == "optimal") args.validator = ValidatorKind::kOptimal;
      else if (kind == "iterative") args.validator = ValidatorKind::kIterative;
      else if (kind == "exact") args.validator = ValidatorKind::kExact;
      else args.ok = false;
    } else if (arg == "--bidirectional") {
      args.bidirectional = true;
    } else if (const char* v = value_of("--threads=")) {
      args.threads = std::atoi(v);
    } else if (arg == "--no-planner") {
      args.planner = false;
    } else if (const char* v = value_of("--memory-budget-mb=")) {
      args.memory_budget_mb = std::atoll(v);
    } else if (const char* v = value_of("--shards=")) {
      args.shards = std::atoi(v);
    } else if (const char* v = value_of("--shard-transport=")) {
      std::string kind = v;
      if (kind == "inproc") args.shard_transport = ShardTransport::kInProcess;
      else if (kind == "socket") args.shard_transport = ShardTransport::kSocket;
      else if (kind == "process") {
        args.shard_transport = ShardTransport::kProcess;
      } else {
        args.ok = false;
      }
    } else if (const char* v = value_of("--shard-runner=")) {
      args.shard_runner = v;
    } else if (const char* v = value_of("--server=")) {
      std::string addr = v;
      size_t colon = addr.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == addr.size()) {
        std::fprintf(stderr, "--server wants HOST:PORT, got %s\n", v);
        args.ok = false;
      } else {
        args.server_host = addr.substr(0, colon);
        args.server_port =
            static_cast<uint16_t>(std::atoi(addr.c_str() + colon + 1));
      }
    } else if (const char* v = value_of("--deadline=")) {
      args.deadline_seconds = std::atof(v);
    } else if (arg == "--ods") {
      args.assemble_ods = true;
    } else if (const char* v = value_of("--json=")) {
      args.json_path = v;
    } else if (const char* v = value_of("--csv=")) {
      args.csv_path = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      args.ok = false;
    } else {
      args.file = arg;
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (!args.ok) return 2;

  CsvOptions csv_options;
  csv_options.max_rows = args.max_rows;
  Result<Table> table = args.file.empty()
                            ? ParseCsv(kEmbeddedSample, csv_options)
                            : ReadCsvFile(args.file, csv_options);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  if (args.file.empty()) {
    std::printf("(no file given; profiling an embedded sample — pass a"
                " CSV path to profile your own data)\n");
  }
  std::printf("schema: %s\n", table->schema().ToString().c_str());
  std::printf("rows:   %lld\n\n",
              static_cast<long long>(table->num_rows()));

  EncodedTable enc = EncodeTable(*table);
  DiscoveryOptions options;
  options.epsilon = args.epsilon;
  options.kinds = args.kinds;
  options.afd_error = args.afd_error;
  options.top_k = args.top_k;
  options.validator = args.validator;
  options.bidirectional = args.bidirectional;
  options.num_threads = args.threads;
  options.enable_derivation_planner = args.planner;
  options.partition_memory_budget_bytes = args.memory_budget_mb << 20;
  options.num_shards = args.shards;
  options.shard_transport = args.shard_transport;
  options.shard_runner_path = args.shard_runner;

  DiscoveryResult result;
  if (!args.server_host.empty()) {
    // Remote mode: the daemon runs the job; we get back the same
    // DiscoveryResult the local path would have produced.
    Result<DiscoveryResult> remote = serve::RunRemoteDiscovery(
        args.server_host, args.server_port, enc, options,
        args.deadline_seconds);
    if (!remote.ok()) {
      std::fprintf(stderr, "error: server %s:%u: %s\n",
                   args.server_host.c_str(),
                   static_cast<unsigned>(args.server_port),
                   remote.status().ToString().c_str());
      return 1;
    }
    result = std::move(*remote);
  } else {
    result = DiscoverOds(enc, options);
  }
  if (!result.shard_status.ok()) {
    // Reaching here means the fault survived the whole supervision
    // ladder (retries, backoff, in-process fallback) — or supervision
    // was disabled. One human-readable line, nonzero exit.
    std::fprintf(stderr,
                 "error: shard validation failed unrecoverably after "
                 "%lld retries (transport %s): %s\n",
                 static_cast<long long>(result.stats.shard_retries),
                 args.shard_transport == ShardTransport::kProcess ? "process"
                 : args.shard_transport == ShardTransport::kSocket ? "socket"
                                                                   : "inproc",
                 result.shard_status.ToString().c_str());
    return 1;
  }
  result.SortByInterestingness();

  std::printf("approximate order dependencies (%s, eps = %.0f%%):\n%s",
              ValidatorKindToString(options.validator),
              100.0 * options.epsilon, result.Summary(enc, 25).c_str());

  if (args.kinds_explicit) {
    std::printf("\nper kind:");
    bool first = true;
    for (int k = 0; k < kNumDependencyKinds; ++k) {
      const DependencyKind kind = static_cast<DependencyKind>(k);
      if (!options.kinds.Contains(kind)) continue;
      std::printf("%s %lld %s", first ? "" : ",",
                  static_cast<long long>(result.CountOfKind(kind)),
                  DependencyKindToString(kind));
      first = false;
    }
    std::printf("\n");
  }

  if (args.assemble_ods) {
    PartitionCache cache(&enc);
    auto ods = AssembleOds(enc, result, args.epsilon, &cache);
    std::printf("\ncomposed ODs (%zu):\n", ods.size());
    for (const auto& od : ods) {
      std::printf("  e=%.4f  %s\n", od.approx_factor,
                  od.ToString(enc).c_str());
    }
  }

  if (!args.json_path.empty()) {
    Status st = WriteStringToFile(args.json_path, ResultToJson(result, enc));
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    else std::printf("\nwrote %s\n", args.json_path.c_str());
  }
  if (!args.csv_path.empty()) {
    Status st = WriteStringToFile(args.csv_path, ResultToCsv(result, enc));
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    else std::printf("wrote %s\n", args.csv_path.c_str());
  }

  std::printf("\n%s", result.stats.ToString().c_str());
  if (args.shards > 0) {
    // Next to the codec summary above: what the supervisor absorbed —
    // all zeros on a healthy run.
    std::printf(
        "shard supervision: %lld retries, %lld respawns, speculation "
        "%lld won / %lld lost, %lld fallback shards, %lld footers lost\n",
        static_cast<long long>(result.stats.shard_retries),
        static_cast<long long>(result.stats.shard_respawns),
        static_cast<long long>(result.stats.shard_speculative_wins),
        static_cast<long long>(result.stats.shard_speculative_losses),
        static_cast<long long>(result.stats.shard_fallback_shards),
        static_cast<long long>(result.stats.shard_footers_missing));
  }
  if (result.timed_out) {
    std::printf("NOTE: discovery hit the time budget; results partial.\n");
  }
  return 0;
}
