// Scenario: diff two serialized discovery results.
//
// Profiling runs on evolving data (or under different thresholds) leave
// behind result blobs (od/result_io.h, SerializeResult — also what
// discovery_serve streams to its clients). This tool compares two of
// them by dependency identity and reports what changed:
//
//   ./examples/result_diff old.blob new.blob [--error-tol=0.0]
//
//   added          in the new result only
//   removed        in the old result only
//   error-shifted  in both, but the error measure moved by more than
//                  --error-tol (default 0: any bit-level change counts,
//                  which is meaningful because same-input runs are
//                  bit-identical by the determinism contract)
//
// Identity is the (kind, context, lhs, rhs, polarity) tuple — the same
// key the discovery driver's deterministic ranking deduplicates on.
// Attributes print as column indices; blobs carry no schema.
//
// Exit status: 0 when the results match, 1 when they differ, 2 on usage
// or decode errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "od/discovery.h"
#include "od/result_io.h"

using namespace aod;

namespace {

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open: " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return bytes;
}

/// The identity key: one dependency per tuple, so a std::map over it
/// gives a stable, deterministic report order (kind, context, a, b,
/// polarity).
using DependencyKey = std::tuple<int, uint64_t, int, int, int>;

DependencyKey KeyOf(const DiscoveredDependency& d) {
  return DependencyKey{static_cast<int>(d.kind), d.context.bits(), d.a, d.b,
                       d.opposite ? 1 : 0};
}

std::map<DependencyKey, const DiscoveredDependency*> Index(
    const DiscoveryResult& result) {
  std::map<DependencyKey, const DiscoveredDependency*> index;
  for (const DiscoveredDependency& d : result.dependencies) {
    index.emplace(KeyOf(d), &d);
  }
  return index;
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_path;
  std::string new_path;
  double error_tol = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--error-tol=", 0) == 0) {
      error_tol = std::atof(arg.c_str() + std::strlen("--error-tol="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else if (old_path.empty()) {
      old_path = arg;
    } else if (new_path.empty()) {
      new_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (old_path.empty() || new_path.empty()) {
    std::fprintf(stderr,
                 "usage: result_diff old.blob new.blob [--error-tol=0.0]\n");
    return 2;
  }

  DiscoveryResult results[2];
  const std::string* paths[2] = {&old_path, &new_path};
  for (int i = 0; i < 2; ++i) {
    Result<std::vector<uint8_t>> bytes = ReadFileBytes(*paths[i]);
    if (!bytes.ok()) {
      std::fprintf(stderr, "error: %s\n", bytes.status().ToString().c_str());
      return 2;
    }
    Result<DiscoveryResult> decoded = DeserializeResult(*bytes);
    if (!decoded.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", paths[i]->c_str(),
                   decoded.status().ToString().c_str());
      return 2;
    }
    results[i] = std::move(*decoded);
  }

  const auto old_index = Index(results[0]);
  const auto new_index = Index(results[1]);

  int64_t added = 0;
  int64_t removed = 0;
  int64_t shifted = 0;
  for (const auto& [key, d] : new_index) {
    if (old_index.count(key) == 0) {
      ++added;
      std::printf("added          %s  (e=%.6f)\n", d->ToString().c_str(),
                  d->error);
    }
  }
  for (const auto& [key, d] : old_index) {
    auto it = new_index.find(key);
    if (it == new_index.end()) {
      ++removed;
      std::printf("removed        %s  (e=%.6f)\n", d->ToString().c_str(),
                  d->error);
      continue;
    }
    const double delta = it->second->error - d->error;
    if ((delta < 0 ? -delta : delta) > error_tol) {
      ++shifted;
      std::printf("error-shifted  %s  (e=%.6f -> %.6f)\n",
                  d->ToString().c_str(), d->error, it->second->error);
    }
  }

  std::printf("%lld added, %lld removed, %lld error-shifted (%zu -> %zu"
              " dependencies)\n",
              static_cast<long long>(added), static_cast<long long>(removed),
              static_cast<long long>(shifted),
              results[0].dependencies.size(),
              results[1].dependencies.size());
  return added + removed + shifted > 0 ? 1 : 0;
}
