// Scenario: run approximate-OD discovery as a long-lived local service.
//
// Starts a DiscoveryServer on 127.0.0.1 and serves jobs until SIGTERM
// or SIGINT, then drains: in-flight jobs finish and deliver their
// results while new submissions are refused with kShuttingDown. Pair it
// with `csv_discovery --server=127.0.0.1:PORT` or the serve::
// DiscoveryClient API.
//
//   ./examples/discovery_serve [options]
//     --port=N              listen port (0 = ephemeral, printed at start)
//     --threads=N           shared validation pool width (0 = all cores)
//     --max-queue=N         queued jobs before kOverloaded (default 8)
//     --max-running=N       jobs executing concurrently (default 2)
//     --max-inflight=N      queued+running jobs per client (default 4)
//     --max-job-seconds=S   hard wall-clock cap per job (0 = uncapped)
//     --max-connections=N   concurrent clients (default 64)
//     --table-cache=N       tables kept warm across jobs (default 8)
//     --idle-timeout=S      drop silent connections after S (0 = never)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "serve/server.h"

using namespace aod;

namespace {

// SIGTERM/SIGINT flip this; the main loop notices and drains. Signal
// handlers may only touch lock-free atomics, so the actual RequestDrain
// call happens on the main thread.
volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

struct Args {
  serve::ServerOptions server;
  bool ok = true;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> const char* {
      size_t len = std::string(prefix).size();
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value_of("--port=")) {
      args.server.port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = value_of("--threads=")) {
      args.server.num_threads = std::atoi(v);
    } else if (const char* v = value_of("--max-queue=")) {
      args.server.max_queue_depth = std::atoi(v);
    } else if (const char* v = value_of("--max-running=")) {
      args.server.max_running_jobs = std::atoi(v);
    } else if (const char* v = value_of("--max-inflight=")) {
      args.server.max_inflight_per_client = std::atoi(v);
    } else if (const char* v = value_of("--max-job-seconds=")) {
      args.server.max_job_seconds = std::atof(v);
    } else if (const char* v = value_of("--max-connections=")) {
      args.server.max_connections = std::atoi(v);
    } else if (const char* v = value_of("--table-cache=")) {
      args.server.table_cache_capacity =
          static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--idle-timeout=")) {
      args.server.idle_timeout_seconds = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      args.ok = false;
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  if (!args.ok) return 2;

  Result<std::unique_ptr<serve::DiscoveryServer>> server =
      serve::DiscoveryServer::Start(args.server);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleStop);
  std::signal(SIGINT, HandleStop);

  std::printf("discovery_serve: listening on 127.0.0.1:%u "
              "(queue %d, running %d, %s pool)\n",
              static_cast<unsigned>((*server)->port()),
              args.server.max_queue_depth, args.server.max_running_jobs,
              args.server.num_threads == 0 ? "all-cores"
                                           : "fixed-width");
  std::fflush(stdout);

  // Park until a stop signal. The server's own threads do all the work;
  // this loop exists only to notice g_stop promptly.
  while (!g_stop) {
    struct timespec ts = {0, 100 * 1000 * 1000};  // 100ms
    nanosleep(&ts, nullptr);
  }

  std::printf("discovery_serve: draining (%d jobs in flight)\n",
              (*server)->active_jobs());
  std::fflush(stdout);
  (*server)->RequestDrain();
  (*server)->Shutdown();

  serve::ServerStats stats = (*server)->stats();
  std::printf(
      "discovery_serve: done. %lld jobs served (%lld rejected), "
      "%lld connections (%lld refused, %lld dropped), "
      "table cache %lld hits / %lld misses\n",
      static_cast<long long>(stats.jobs_admitted),
      static_cast<long long>(stats.jobs_rejected),
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(stats.connections_refused),
      static_cast<long long>(stats.connections_dropped),
      static_cast<long long>(stats.table_cache_hits),
      static_cast<long long>(stats.table_cache_misses));
  return 0;
}
