// Scenario: error repair / outlier detection with removal sets.
//
// The paper's system framework (Fig. 1) feeds verified AODs into "error
// repair / outlier detection": tuples in the minimal removal set of a
// semantically-valid dependency are exactly the suspects a cleaning
// pipeline should review. This example plants concatenated-zero errors
// (the paper's "10% instead of 1%" motivating bug) into a voter table,
// rediscovers the damaged dependency approximately, and shows that the
// minimal removal set pinpoints the corrupted rows.
//
//   ./examples/data_cleaning [rows]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "data/encoder.h"
#include "gen/error_injector.h"
#include "gen/ncvoter_generator.h"
#include "od/aoc_lis_validator.h"
#include "od/discovery.h"
#include "od/repair.h"

using namespace aod;

int main(int argc, char** argv) {
  int64_t rows = argc > 1 ? std::atoll(argv[1]) : 10000;
  std::printf("generating ncvoter dataset: %lld rows...\n",
              static_cast<long long>(rows));
  Table clean = GenerateNcVoterTable(rows, 10, 1729);
  Table dirty = GenerateNcVoterTable(rows, 10, 1729);

  // Plant scale errors into registrationDate (a column that is
  // near-ordered by regNum): the classic data-entry corruption.
  int64_t injected =
      InjectScaleErrors(&dirty, "registrationDate", 0.02, 10.0, 99).value();
  std::set<int64_t> corrupted;
  int date_col = dirty.schema().FieldIndex("registrationDate").value();
  for (int64_t r = 0; r < rows; ++r) {
    if (!(dirty.GetValue(r, date_col) == clean.GetValue(r, date_col))) {
      corrupted.insert(r);
    }
  }
  std::printf("injected %lld corrupted cells into registrationDate\n",
              static_cast<long long>(injected));

  // Step 1 of the Fig. 1 loop: discover AODs on the dirty data.
  EncodedTable enc = EncodeTable(dirty);
  DiscoveryOptions options;
  options.epsilon = 0.10;
  DiscoveryResult result = DiscoverOds(enc, options);
  result.SortByInterestingness();
  const auto ocs = result.Ocs();
  std::printf("\ndiscovered %zu AOCs; top ranked:\n", ocs.size());
  for (size_t i = 0; i < ocs.size() && i < 5; ++i) {
    const DiscoveredDependency& d = *ocs[i];
    std::printf("  score=%.4f e=%5.2f%%  %s\n", d.interestingness,
                100.0 * d.error, d.Oc().ToString(enc).c_str());
  }

  // Step 2: a domain expert confirms regNum ~ registrationDate is
  // intended; its minimal removal set flags the suspects.
  int reg = enc.ColumnIndex("regNum");
  int date = enc.ColumnIndex("registrationDate");
  StrippedPartition whole = StrippedPartition::WholeRelation(enc.num_rows());
  ValidatorOptions vo;
  vo.collect_removal_set = true;
  vo.early_exit = false;
  ValidationOutcome out =
      ValidateAocOptimal(enc, whole, reg, date, 1.0, enc.num_rows(), vo);

  int64_t true_positives = 0;
  for (int32_t r : out.removal_rows) {
    if (corrupted.count(r)) ++true_positives;
  }
  std::printf("\nregNum ~ registrationDate: e = %.2f%%, removal set of"
              " %lld tuples\n",
              100.0 * out.approx_factor,
              static_cast<long long>(out.removal_size));
  std::printf("flagged suspects containing injected errors: %lld / %lld"
              " (%.0f%% recall)\n",
              static_cast<long long>(true_positives),
              static_cast<long long>(corrupted.size()),
              corrupted.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(true_positives) /
                        static_cast<double>(corrupted.size()));
  std::printf("(the remaining flagged tuples are the generator's own ~5%%"
              " out-of-order registrations — also genuine anomalies)\n");

  // Step 3: repair suggestions (after Qiu et al. [7]) — for every suspect
  // cell, the interval of values that would restore the order.
  RepairPlan plan = SuggestOcRepairs(
      enc, whole, CanonicalOc{AttributeSet(), reg, date});
  std::printf("\n%s", plan.ToString(enc, 8).c_str());
  return 0;
}
