// The standalone shard-runner process: speaks the shard wire protocol
// over localhost TCP (--connect=HOST:PORT) or stdin/stdout (--stdio),
// bootstraps its config and rank-encoded table off the wire, validates
// candidate batches, and ends with the stats-footer handshake. Spawned
// by the discovery driver under DiscoveryOptions::shard_transport =
// ShardTransport::kProcess; see src/shard/runner_main.h.
#include "shard/runner_main.h"

int main(int argc, char** argv) {
  return aod::shard::ShardRunnerMain(argc, argv);
}
